module A = Polymath.Affine
module Q = Zmath.Rat
module B = Zmath.Bigint

type t = {
  original : Trahrhe.Nest.t;
  tile_nest : Trahrhe.Nest.t;
  size : int;
  derived_params : (string * string) list;
}

let tile_var v = v ^ "t"

let int_coeff ~what c =
  if not (Q.is_integer c) then
    invalid_arg (Printf.sprintf "Tile.tile: non-integer coefficient in %s" what);
  B.to_int_exn (Q.num c)

(* tile-space bound: substitute original iterators by their tile-extreme
   position (base or top, by coefficient sign), parameters P by size*Pt
   (P assumed divisible by the tile size), then divide by the size with
   a floor (lower) or last-point floor + 1 (exclusive upper). *)
let tile_bound ~kind ~size ~is_param bound =
  let terms = A.terms bound in
  let shifted_const =
    List.fold_left
      (fun acc (v, c) ->
        if is_param v then acc
        else begin
          let cq = int_coeff ~what:("coefficient of " ^ v) c in
          let extreme =
            match kind with
            | `Lower_min -> if cq >= 0 then 0 else size - 1
            | `Upper_max -> if cq >= 0 then size - 1 else 0
          in
          acc + (cq * extreme)
        end)
      0 terms
  in
  let c0 = int_coeff ~what:"constant term" (A.const_part bound) + shifted_const in
  let tile_terms =
    List.map
      (fun (v, c) ->
        let cq = int_coeff ~what:"coefficient" c in
        ((if is_param v then v ^ "t" else tile_var v), Q.of_int cq))
      terms
  in
  let const =
    let floor_div x = if x >= 0 then x / size else -(((-x) + size - 1) / size) in
    match kind with
    | `Lower_min -> floor_div c0
    | `Upper_max -> floor_div (c0 - 1) + 1
  in
  A.make tile_terms (Q.of_int const)

let tile (nest : Trahrhe.Nest.t) ~size =
  if size <= 0 then invalid_arg "Tile.tile: size must be positive";
  let is_param v = List.mem v nest.Trahrhe.Nest.params in
  let tile_levels =
    List.map
      (fun (l : Trahrhe.Nest.level) ->
        { Trahrhe.Nest.var = tile_var l.var;
          lower = tile_bound ~kind:`Lower_min ~size ~is_param l.lower;
          upper = tile_bound ~kind:`Upper_max ~size ~is_param l.upper })
      nest.Trahrhe.Nest.levels
  in
  let derived_params = List.map (fun p -> (p, p ^ "t")) nest.Trahrhe.Nest.params in
  { original = nest;
    tile_nest = Trahrhe.Nest.make ~params:(List.map snd derived_params) tile_levels;
    size;
    derived_params }

let bound_c ~ty a = Symx.Cemit.emit_poly_int (A.to_poly a) ~ty

let intra_bounds t ~ty =
  List.map
    (fun (l : Trahrhe.Nest.level) ->
      let vt = tile_var l.var in
      let base = Printf.sprintf "(%s)*%d" vt t.size in
      let lo = bound_c ~ty l.lower and up = bound_c ~ty l.upper in
      ( l.var,
        Printf.sprintf "(%s > %s ? %s : %s)" lo base lo base,
        Printf.sprintf "(%s < %s + %d ? %s : %s + %d)" up base t.size up base t.size ))
    t.original.Trahrhe.Nest.levels

let emit_intra t ~ty ~body =
  let bounds = intra_bounds t ~ty in
  let rec loops = function
    | [] -> body
    | (v, lo, up) :: rest ->
      [ Codegen.C_ast.For
          { init = Printf.sprintf "%s %s = %s" ty v lo;
            cond = Printf.sprintf "%s < %s" v up;
            step = v ^ "++";
            body = loops rest } ]
  in
  loops bounds

let collapse_tiles ?(config = Codegen.Schemes.default_config) t ~body =
  let ty = config.Codegen.Schemes.counter_ty in
  let inv = Trahrhe.Inversion.invert_exn t.tile_nest in
  (* derived parameters: Pt = P / size (P assumed divisible) *)
  let derived_decls =
    List.map
      (fun (p, pt) ->
        Codegen.C_ast.Decl
          { ty; name = pt; init = Some (Printf.sprintf "%s / %d" p t.size) })
      t.derived_params
  in
  derived_decls
  @ Codegen.Schemes.per_thread ~config inv ~body:(emit_intra t ~ty ~body)

let iterate t ~param f =
  List.iter
    (fun (p, _) ->
      if param p mod t.size <> 0 then
        invalid_arg
          (Printf.sprintf "Tile.iterate: parameter %s = %d is not a multiple of the tile size %d"
             p (param p) t.size))
    t.derived_params;
  let tparam x =
    match List.find_opt (fun (_, pt) -> pt = x) t.derived_params with
    | Some (p, _) -> param p / t.size
    | None -> param x
  in
  let levels = Array.of_list t.original.Trahrhe.Nest.levels in
  let d = Array.length levels in
  let orig_idx = Array.make d 0 in
  let eval_bound k a =
    let v =
      A.eval
        (fun x ->
          let rec find j =
            if j >= k then Q.of_int (param x)
            else if levels.(j).Trahrhe.Nest.var = x then Q.of_int orig_idx.(j)
            else find (j + 1)
          in
          find 0)
        a
    in
    B.to_int_exn (Q.to_bigint_exn v)
  in
  Trahrhe.Nest.iterate t.tile_nest ~param:tparam (fun tidx ->
      let rec go k =
        if k = d then f (Array.copy orig_idx)
        else begin
          let lo = max (eval_bound k levels.(k).Trahrhe.Nest.lower) (tidx.(k) * t.size) in
          let hi =
            min (eval_bound k levels.(k).Trahrhe.Nest.upper) ((tidx.(k) * t.size) + t.size)
          in
          for v = lo to hi - 1 do
            orig_idx.(k) <- v;
            go (k + 1)
          done
        end
      in
      go 0)
