lib/rootsolve/solver.ml: List Polymath Printf Symx Zmath
