lib/rootsolve/solver.mli: Polymath Symx
