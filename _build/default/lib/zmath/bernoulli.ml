(* Recurrence for the B_1 = +1/2 ("second") Bernoulli numbers:
   B_n = n/ (n+1) * ... we use the standard identity
   sum_{j=0}^{n} C(n+1, j) B_j^- = 0 for n >= 1 on the B_1 = -1/2 kind,
   then flip the sign of B_1. All other values coincide since odd
   Bernoulli numbers beyond B_1 vanish. *)

let table : (int, Rat.t) Hashtbl.t = Hashtbl.create 16

let rec minus_kind j =
  if j < 0 then invalid_arg "Bernoulli.number";
  match Hashtbl.find_opt table j with
  | Some v -> v
  | None ->
    let v =
      if j = 0 then Rat.one
      else begin
        (* B_j^- = -1/(j+1) * sum_{i=0}^{j-1} C(j+1, i) B_i^- *)
        let sum = ref Rat.zero in
        for i = 0 to j - 1 do
          sum := Rat.add !sum (Rat.mul (Binomial.binomial_rat (j + 1) i) (minus_kind i))
        done;
        Rat.mul (Rat.of_ints (-1) (j + 1)) !sum
      end
    in
    Hashtbl.add table j v;
    v

let number j = if j = 1 then Rat.half else minus_kind j
