(** Binomial coefficients and factorials over {!Bigint}. *)

(** [factorial n] is [n!].
    @raise Invalid_argument when [n < 0]. *)
val factorial : int -> Bigint.t

(** [binomial n k] is the binomial coefficient C(n, k); zero when
    [k < 0] or [k > n].
    @raise Invalid_argument when [n < 0]. *)
val binomial : int -> int -> Bigint.t

(** [binomial_rat n k] is {!binomial} as a rational. *)
val binomial_rat : int -> int -> Rat.t
