(** Bernoulli numbers with the [B_1 = +1/2] convention.

    This is the convention under which the Faulhaber formula gives the
    {e inclusive} power sum [sum_{i=0}^{n} i^k], the building block of
    symbolic summation over loop ranges (used to construct ranking
    Ehrhart polynomials). Values are memoized. *)

(** [number j] is the Bernoulli number B_j (B_0 = 1, B_1 = 1/2,
    B_2 = 1/6, B_3 = 0, B_4 = -1/30, ...).
    @raise Invalid_argument when [j < 0]. *)
val number : int -> Rat.t
