module B = Bigint

type t = { n : B.t; d : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { n = B.zero; d = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.is_one g then { n = num; d = den }
    else { n = fst (B.divmod num g); d = fst (B.divmod den g) }
  end

let of_bigint n = { n; d = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints num den = make (B.of_int num) (B.of_int den)
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let half = of_ints 1 2
let num x = x.n
let den x = x.d
let neg x = { x with n = B.neg x.n }
let abs x = { x with n = B.abs x.n }
let add x y = make (B.add (B.mul x.n y.d) (B.mul y.n x.d)) (B.mul x.d y.d)
let sub x y = add x (neg y)
let mul x y = make (B.mul x.n y.n) (B.mul x.d y.d)
let inv x = make x.d x.n
let div x y = mul x (inv y)

let pow x k =
  if k >= 0 then { n = B.pow x.n k; d = B.pow x.d k }
  else inv { n = B.pow x.n (-k); d = B.pow x.d (-k) }

let compare x y = B.compare (B.mul x.n y.d) (B.mul y.n x.d)
let equal x y = B.equal x.n y.n && B.equal x.d y.d
let sign x = B.sign x.n
let is_zero x = B.is_zero x.n
let is_integer x = B.is_one x.d

let floor x =
  let q, _ = B.ediv_rem x.n x.d in
  q

let ceil x = B.neg (floor (neg x))

let to_bigint_exn x =
  if is_integer x then x.n else failwith "Rat.to_bigint_exn: not an integer"

let to_float x = B.to_float x.n /. B.to_float x.d

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (B.of_string s)
  | Some i ->
    make (B.of_string (String.sub s 0 i)) (B.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let to_string x =
  if is_integer x then B.to_string x.n
  else B.to_string x.n ^ "/" ^ B.to_string x.d

let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let hash x = Hashtbl.hash (B.hash x.n, B.hash x.d)
let pp fmt x = Format.pp_print_string fmt (to_string x)
