(** Faulhaber power-sum polynomials.

    [power_sum k] is the univariate polynomial S_k with
    [S_k(n) = sum_{i=0}^{n} i^k] for every integer [n >= -1]
    (in particular [S_k(-1) = 0], which makes interval sums
    [sum_{i=a}^{b} i^k = S_k(b) - S_k(a-1)] correct for empty ranges
    [b = a-1]). This identity is the engine of exact symbolic summation
    of polynomials over parametric loop ranges. *)

(** [power_sum k] is the coefficient list [(exponent, coefficient)] of
    S_k, highest exponent first, zero coefficients omitted.
    @raise Invalid_argument when [k < 0]. *)
val power_sum : int -> (int * Rat.t) list

(** [eval_power_sum k n] is [S_k(n)] evaluated exactly. *)
val eval_power_sum : int -> Bigint.t -> Rat.t
