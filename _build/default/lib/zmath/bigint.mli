(** Arbitrary-precision signed integers.

    The container provides no [zarith], so this module implements the
    arbitrary-precision arithmetic needed by exact Ehrhart/ranking
    polynomial computations: sign-magnitude representation over base-2^30
    limbs, with schoolbook multiplication and shift-subtract division.
    The integers manipulated by the collapser are small (coefficients of
    low-degree polynomials), so asymptotic performance is irrelevant;
    correctness and clarity are what matter. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

(** [of_int n] is the big integer equal to the native integer [n]. *)
val of_int : int -> t

(** [to_int x] is [Some n] when [x] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn x] is [x] as a native int.
    @raise Failure when [x] does not fit. *)
val to_int_exn : t -> int

(** [of_string s] parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string x] is the decimal representation of [x]. *)
val to_string : t -> string

(** [sign x] is -1, 0 or 1. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward
    zero and [sign r = sign a] (C semantics).
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

(** [ediv_rem a b] is Euclidean division: [a = q*b + r] with
    [0 <= r < |b|]. *)
val ediv_rem : t -> t -> t * t

(** [gcd a b] is the non-negative greatest common divisor. *)
val gcd : t -> t -> t

(** [pow x k] is [x] raised to the non-negative exponent [k].
    @raise Invalid_argument when [k < 0]. *)
val pow : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool

(** [to_float x] is the nearest float (may overflow to infinity). *)
val to_float : t -> float

val hash : t -> int
val pp : Format.formatter -> t -> unit
