(* Faulhaber with the B_1 = +1/2 convention:
     sum_{i=1}^{n} i^k = 1/(k+1) * sum_{j=0}^{k} C(k+1, j) B_j n^{k+1-j}.
   For k >= 1 the i = 0 term vanishes so the same polynomial equals the
   inclusive-from-zero sum; k = 0 needs the extra constant 1. *)

let power_sum k =
  if k < 0 then invalid_arg "Faulhaber.power_sum";
  if k = 0 then [ (1, Rat.one); (0, Rat.one) ]
  else begin
    let inv = Rat.of_ints 1 (k + 1) in
    let terms = ref [] in
    for j = k downto 0 do
      let c = Rat.mul inv (Rat.mul (Binomial.binomial_rat (k + 1) j) (Bernoulli.number j)) in
      if not (Rat.is_zero c) then terms := (k + 1 - j, c) :: !terms
    done;
    List.sort (fun (a, _) (b, _) -> compare b a) !terms
  end

let eval_power_sum k n =
  let coeffs = power_sum k in
  List.fold_left
    (fun acc (e, c) -> Rat.add acc (Rat.mul c (Rat.of_bigint (Bigint.pow n e))))
    Rat.zero coeffs
