(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is positive and coprime
    with the numerator; zero is [0/1]. These are the coefficients of
    every polynomial manipulated by the collapser (ranking Ehrhart
    polynomials have rational coefficients with denominator dividing
    [c!] for a depth-[c] nest). *)

type t

val zero : t
val one : t
val minus_one : t
val two : t
val half : t

(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_ints num den] is [num/den] from native ints. *)
val of_ints : int -> int -> t

val of_int : int -> t
val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

(** @raise Division_by_zero when inverting zero. *)
val inv : t -> t

(** [pow x k] is [x^k]; negative [k] inverts ([x] must be nonzero). *)
val pow : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

(** [floor x] is the greatest integer [<= x]. *)
val floor : t -> Bigint.t

(** [ceil x] is the least integer [>= x]. *)
val ceil : t -> Bigint.t

(** [to_bigint_exn x] is [x] as an integer.
    @raise Failure when [x] is not an integer. *)
val to_bigint_exn : t -> Bigint.t

val to_float : t -> float

(** [of_string s] parses ["a"], ["a/b"], or ["-a/b"] decimal forms. *)
val of_string : string -> t

(** [to_string x] is ["a"] when integral, else ["a/b"]. *)
val to_string : t -> string

val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int
val pp : Format.formatter -> t -> unit
