(* Sign-magnitude big integers over base-2^30 limbs (little-endian,
   no trailing zero limbs; the magnitude is empty iff the number is 0). *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* |min_int| = 2^62 overflows native abs; 2^62 = [0; 0; 4] base 2^30 *)
    { sign = -1; mag = [| 0; 0; 4 |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    let rec limbs acc v =
      if v = 0 then List.rev acc else limbs ((v land base_mask) :: acc) (v lsr base_bits)
    in
    { sign; mag = Array.of_list (limbs [] (Stdlib.abs n)) }
  end

let sign x = x.sign
let is_zero x = x.sign = 0

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb + 1 in
  let r = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    let c = cmp_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then normalize x.sign (sub_mag x.mag y.mag)
    else normalize y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else begin
    let la = Array.length x.mag and lb = Array.length y.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let xi = x.mag.(i) in
      for j = 0 to lb - 1 do
        let v = r.(i + j) + (xi * y.mag.(j)) + !carry in
        r.(i + j) <- v land base_mask;
        carry := v lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize (x.sign * y.sign) r
  end

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let is_one x = equal x one

let nbits_mag mag =
  let l = Array.length mag in
  if l = 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    ((l - 1) * base_bits) + bits mag.(l - 1) 0
  end

let bit_mag mag i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length mag then 0 else (mag.(limb) lsr off) land 1

(* Shift-subtract long division on magnitudes. Quadratic in the bit
   length, which is fine: the collapser only divides small coefficients.
   The remainder always stays below |b|, so [lb + 1] limbs suffice. *)
let divmod_mag a b =
  let nb = nbits_mag a in
  let lb = Array.length b in
  let q = Array.make (Array.length a) 0 in
  let r = Array.make (lb + 1) 0 in
  let shift_in_bit bit =
    let carry = ref bit in
    for i = 0 to lb do
      let v = (r.(i) lsl 1) lor !carry in
      r.(i) <- v land base_mask;
      carry := v lsr base_bits
    done;
    assert (!carry = 0)
  in
  let r_ge_b () =
    if r.(lb) <> 0 then true
    else begin
      let rec go i =
        if i < 0 then true else if r.(i) <> b.(i) then r.(i) > b.(i) else go (i - 1)
      in
      go (lb - 1)
    end
  in
  let r_sub_b () =
    let borrow = ref 0 in
    for i = 0 to lb do
      let d = r.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin r.(i) <- d + base; borrow := 1 end
      else begin r.(i) <- d; borrow := 0 end
    done;
    assert (!borrow = 0)
  in
  for i = nb - 1 downto 0 do
    shift_in_bit (bit_mag a i);
    if r_ge_b () then begin
      r_sub_b ();
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
  done;
  (q, r)

(* short division by a single limb: O(number of limbs) *)
let divmod_mag_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, [| !rem |])

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then (zero, zero)
  else begin
    let q_mag, r_mag =
      if Array.length y.mag = 1 then divmod_mag_small x.mag y.mag.(0)
      else divmod_mag x.mag y.mag
    in
    (normalize (x.sign * y.sign) q_mag, normalize x.sign r_mag)
  end

let ediv_rem x y =
  let q, r = divmod x y in
  if r.sign >= 0 then (q, r)
  else if y.sign > 0 then (sub q one, add r y)
  else (add q one, sub r y)

let rec gcd x y =
  let x = abs x and y = abs y in
  if is_zero y then x
  else begin
    let _, r = divmod x y in
    gcd y r
  end

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else go (if k land 1 = 1 then mul acc b else acc) (mul b b) (k lsr 1)
  in
  go one x k

let to_int x =
  if x.sign = 0 then Some 0
  else begin
    let nb = nbits_mag x.mag in
    if nb <= 62 then begin
      let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) x.mag 0 in
      Some (if x.sign < 0 then -v else v)
    end
    else if nb = 63 && x.sign < 0 && x.mag = [| 0; 0; 4 |] then Some min_int
    else None
  end

let to_int_exn x =
  match to_int x with Some n -> n | None -> failwith "Bigint.to_int_exn: overflow"

let to_float x =
  let v = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !v else !v

let ten = of_int 10

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let neg_p, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if neg_p then neg !acc else !acc

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod v ten in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int_exn r))
      end
    in
    go (abs x);
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let hash x = Hashtbl.hash (x.sign, x.mag)
let pp fmt x = Format.pp_print_string fmt (to_string x)
