lib/zmath/faulhaber.mli: Bigint Rat
