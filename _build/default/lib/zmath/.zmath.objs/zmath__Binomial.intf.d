lib/zmath/binomial.mli: Bigint Rat
