lib/zmath/bernoulli.ml: Binomial Hashtbl Rat
