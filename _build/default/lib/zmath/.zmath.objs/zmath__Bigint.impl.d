lib/zmath/bigint.ml: Array Buffer Char Format Hashtbl List Stdlib String
