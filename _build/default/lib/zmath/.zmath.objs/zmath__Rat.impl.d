lib/zmath/rat.ml: Bigint Format Hashtbl String
