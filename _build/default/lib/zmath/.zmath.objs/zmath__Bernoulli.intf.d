lib/zmath/bernoulli.mli: Rat
