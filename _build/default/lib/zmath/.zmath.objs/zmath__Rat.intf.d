lib/zmath/rat.mli: Bigint Format
