lib/zmath/binomial.ml: Bigint Rat Stdlib
