lib/zmath/bigint.mli: Format
