lib/zmath/faulhaber.ml: Bernoulli Bigint Binomial List Rat
