module B = Bigint

let factorial n =
  if n < 0 then invalid_arg "Binomial.factorial";
  let rec go acc i = if i > n then acc else go (B.mul acc (B.of_int i)) (i + 1) in
  go B.one 1

let binomial n k =
  if n < 0 then invalid_arg "Binomial.binomial";
  if k < 0 || k > n then B.zero
  else begin
    let k = Stdlib.min k (n - k) in
    (* multiplicative form keeps intermediates integral:
       C(n,k) = prod_{i=1..k} (n-k+i)/i, exact at each step *)
    let rec go acc i =
      if i > k then acc
      else go (fst (B.divmod (B.mul acc (B.of_int (n - k + i))) (B.of_int i))) (i + 1)
    in
    go B.one 1
  end

let binomial_rat n k = Rat.of_bigint (binomial n k)
