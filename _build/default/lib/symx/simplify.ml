module P = Polymath.Polynomial
module Q = Zmath.Rat

let rec to_polynomial (e : Expr.t) =
  match e with
  | Expr.Const c -> Some (P.const c)
  | Expr.I -> None
  | Expr.Var x -> Some (P.var x)
  | Expr.Sum es ->
    List.fold_left
      (fun acc e ->
        match (acc, to_polynomial e) with
        | Some p, Some q -> Some (P.add p q)
        | _ -> None)
      (Some P.zero) es
  | Expr.Prod es ->
    List.fold_left
      (fun acc e ->
        match (acc, to_polynomial e) with
        | Some p, Some q -> Some (P.mul p q)
        | _ -> None)
      (Some P.one) es
  | Expr.Pow (b, k) ->
    if Q.is_integer k && Q.sign k >= 0 then
      match to_polynomial b with
      | Some p -> Some (P.pow p (Zmath.Bigint.to_int_exn (Q.num k)))
      | None -> None
    else None

let rec normalize (e : Expr.t) =
  match to_polynomial e with
  | Some p -> Expr.of_poly p
  | None -> (
    match e with
    | Expr.Const _ | Expr.I | Expr.Var _ -> e
    | Expr.Sum es -> Expr.sum (normalize_group es ~ident:P.zero ~combine:P.add)
    | Expr.Prod es -> Expr.prod (normalize_group es ~ident:P.one ~combine:P.mul)
    | Expr.Pow (b, k) -> Expr.pow (normalize b) k)

(* normalize a list of operands: polynomial members are folded together
   into one canonical term, the rest are normalized recursively *)
and normalize_group es ~ident ~combine =
  let polys, others =
    List.fold_left
      (fun (polys, others) e ->
        match to_polynomial e with
        | Some p -> (combine polys p, others)
        | None -> (polys, normalize e :: others))
      (ident, []) es
  in
  if P.equal polys ident then List.rev others else Expr.of_poly polys :: List.rev others

let rec size (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.I | Expr.Var _ -> 1
  | Expr.Sum es | Expr.Prod es -> List.fold_left (fun a e -> a + size e) 1 es
  | Expr.Pow (b, _) -> 1 + size b
