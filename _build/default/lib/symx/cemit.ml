module Q = Zmath.Rat
module B = Zmath.Bigint

type mode = Real | Complex

let classify e =
  let rec go = function
    | Expr.Const _ | Expr.Var _ -> false
    | Expr.I -> true
    | Expr.Sum es | Expr.Prod es -> List.exists go es
    | Expr.Pow (b, k) ->
      go b || (not (Q.is_integer k) && not (Q.equal (Q.abs k) Q.half))
  in
  if go e then Complex else Real

let rat_literal q =
  if Q.is_integer q then B.to_string (Q.num q) ^ ".0"
  else Printf.sprintf "(%s.0/%s.0)" (B.to_string (Q.num q)) (B.to_string (Q.den q))

(* precedence levels: 0 = additive, 1 = multiplicative, 2 = atom *)
let rec emit_prec ~mode prec e =
  let paren lvl s = if prec > lvl then "(" ^ s ^ ")" else s in
  match e with
  | Expr.Const c ->
    if Q.sign c < 0 || not (Q.is_integer c) then paren 1 (rat_literal c) else rat_literal c
  | Expr.I -> "I"
  | Expr.Var x -> "(double)" ^ x
  | Expr.Sum es -> paren 0 (String.concat " + " (List.map (emit_prec ~mode 1) es))
  | Expr.Prod es -> paren 1 (String.concat "*" (List.map (emit_prec ~mode 2) es))
  | Expr.Pow (b, k) -> emit_pow ~mode b k

and emit_pow ~mode b k =
  let pow_name = match mode with Real -> "pow" | Complex -> "cpow" in
  let sqrt_name = match mode with Real -> "sqrt" | Complex -> "csqrt" in
  let arg = emit_prec ~mode 0 b in
  if Q.equal k Q.half then Printf.sprintf "%s(%s)" sqrt_name arg
  else if Q.equal k Q.minus_one then Printf.sprintf "(1.0/(%s))" arg
  else if Q.equal k (Q.of_ints 1 3) && mode = Real then Printf.sprintf "cbrt(%s)" arg
  else Printf.sprintf "%s(%s, %s)" pow_name arg (rat_literal k)

let emit ~mode e = emit_prec ~mode 0 e

let emit_floor ~mode e =
  match mode with
  | Real -> Printf.sprintf "floor(%s)" (emit ~mode e)
  | Complex -> Printf.sprintf "floor(creal(%s))" (emit ~mode e)

let emit_poly_int p ~ty =
  let module P = Polymath.Polynomial in
  if P.is_zero p then "0"
  else begin
    let d = P.denominator_lcm p in
    let scaled = P.scale (Q.of_bigint d) p in
    let term (c, m) =
      let c = Q.to_bigint_exn c in
      let mono =
        List.concat_map
          (fun (x, e) -> List.init e (fun _ -> x))
          (Polymath.Monomial.to_list m)
      in
      (* promote the first factor to [ty] so int-typed parameters cannot
         overflow in intermediate products *)
      let parts =
        if B.is_one (B.abs c) && mono <> [] then
          (("(" ^ ty ^ ")" ^ List.hd mono) :: List.tl mono)
        else ("(" ^ ty ^ ")" ^ B.to_string (B.abs c)) :: mono
      in
      (B.sign c < 0, String.concat "*" parts)
    in
    let terms = List.map term (P.terms scaled) in
    let buf = Buffer.create 64 in
    List.iteri
      (fun i (neg, s) ->
        if i = 0 then begin
          if neg then Buffer.add_string buf "-";
          Buffer.add_string buf s
        end
        else begin
          Buffer.add_string buf (if neg then " - " else " + ");
          Buffer.add_string buf s
        end)
      terms;
    let num = Buffer.contents buf in
    if B.is_one d then num else Printf.sprintf "(%s)/%s" num (B.to_string d)
  end
