(** Symbolic scalar expressions with rational powers.

    The closed-form roots of ranking polynomials (paper §IV) live here:
    nested radicals like
    [(sqrt(243 pc^2 - 486 pc + 242)/3^(3/2) + 3 pc - 3)^(1/3) + ... ].
    Expressions may evaluate through complex intermediates even when the
    final value is real (paper §IV-C), so the numeric evaluator works
    over complex doubles, exactly like the generated C code uses
    [csqrt]/[cpow]/[creal]. *)

module Q = Zmath.Rat

type t =
  | Const of Q.t
  | I  (** the imaginary unit *)
  | Var of string
  | Sum of t list
  | Prod of t list
  | Pow of t * Q.t  (** rational exponent: 1/2 = sqrt, 1/3 = cbrt, -1 = inverse *)

val zero : t
val one : t
val of_int : int -> t
val of_rat : Q.t -> t
val var : string -> t

(** Smart constructors: flatten nested sums/products and fold literal
    constants (they do not attempt algebraic simplification beyond
    that). *)

val add : t -> t -> t
val sum : t list -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val prod : t list -> t
val div : t -> t -> t
val pow : t -> Q.t -> t
val sqrt : t -> t
val cbrt : t -> t
val inv : t -> t

(** [of_poly p] converts a polynomial to an expression. *)
val of_poly : Polymath.Polynomial.t -> t

(** [subst x e' e] substitutes [e'] for variable [x]. *)
val subst : string -> t -> t -> t

val free_vars : t -> string list

(** [eval_complex env e] evaluates numerically over complex doubles.
    [0^0 = 1] and [0^negative] is infinite, matching C's [cpow]
    conventions closely enough for root evaluation. *)
val eval_complex : (string -> Complex.t) -> t -> Complex.t

(** [eval_real env e] is the real part of {!eval_complex} — the value
    the generated C takes with [creal(...)]. *)
val eval_real : (string -> float) -> t -> float

(** [contains_fractional_pow e] is true when some exponent in [e] is
    not an integer — the signal that evaluation may transit through
    complex values and C emission must use [complex.h] functions unless
    the radicand is provably a real square root (see
    {!Cemit.classify}). *)
val contains_fractional_pow : t -> bool

val equal : t -> t -> bool

(** [to_string e] is a readable math-style rendering. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
