(** Algebraic normalization of symbolic expressions.

    The closed-form roots built by the solvers contain nested
    polynomial subexpressions in raw form (e.g. the correlation
    discriminant appears as [(N - 1/2)*(N - 1/2) + 2*(1 - pc)]).
    Normalization expands every radical-free subtree into a canonical
    expanded polynomial, yielding the flat forms the paper prints
    ([N^2 - N - 2 pc + 9/4]) and removing redundant structure before C
    emission. Evaluation semantics are preserved exactly (the rewrite
    only uses ring identities on radical-free subtrees). *)

(** [to_polynomial e] is [Some p] when [e] is a polynomial expression:
    no imaginary unit, and only non-negative integer exponents. *)
val to_polynomial : Expr.t -> Polymath.Polynomial.t option

(** [normalize e] expands maximal polynomial subtrees bottom-up and
    reassembles the rest unchanged. *)
val normalize : Expr.t -> Expr.t

(** [size e] is the node count (used to report simplification). *)
val size : Expr.t -> int
