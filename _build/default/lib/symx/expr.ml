module Q = Zmath.Rat

type t =
  | Const of Q.t
  | I
  | Var of string
  | Sum of t list
  | Prod of t list
  | Pow of t * Q.t

let zero = Const Q.zero
let one = Const Q.one
let of_rat c = Const c
let of_int n = Const (Q.of_int n)
let var x = Var x

let sum es =
  let rec flatten acc c = function
    | [] -> (acc, c)
    | Const k :: rest -> flatten acc (Q.add c k) rest
    | Sum inner :: rest ->
      let acc, c = flatten acc c inner in
      flatten acc c rest
    | e :: rest -> flatten (e :: acc) c rest
  in
  let terms, c = flatten [] Q.zero es in
  let terms = List.rev terms in
  let terms = if Q.is_zero c then terms else terms @ [ Const c ] in
  match terms with [] -> zero | [ e ] -> e | l -> Sum l

let add a b = sum [ a; b ]

let prod es =
  let rec flatten acc c = function
    | [] -> (acc, c)
    | Const k :: rest -> flatten acc (Q.mul c k) rest
    | Prod inner :: rest ->
      let acc, c = flatten acc c inner in
      flatten acc c rest
    | e :: rest -> flatten (e :: acc) c rest
  in
  let factors, c = flatten [] Q.one es in
  if Q.is_zero c then zero
  else begin
    let factors = List.rev factors in
    let factors = if Q.equal c Q.one then factors else Const c :: factors in
    match factors with [] -> one | [ e ] -> e | l -> Prod l
  end

let mul a b = prod [ a; b ]
let neg e = mul (Const Q.minus_one) e
let sub a b = add a (neg b)

let rec pow e k =
  if Q.is_zero k then one
  else if Q.equal k Q.one then e
  else
    match e with
    | Const c when Q.is_integer k && not (Q.is_zero c) ->
      Const (Q.pow c (Zmath.Bigint.to_int_exn (Q.num k)))
    (* collapse (b^k')^k only for integer k: then principal-branch
       evaluation satisfies (z^a)^n = z^(a*n) exactly *)
    | Pow (b, k') when Q.is_integer k -> pow b (Q.mul k k')
    | _ -> Pow (e, k)

let sqrt e = pow e Q.half
let cbrt e = pow e (Q.of_ints 1 3)
let inv e = pow e Q.minus_one
let div a b = mul a (inv b)

let of_poly p =
  sum
    (List.map
       (fun (c, m) ->
         prod
           (Const c
           :: List.map (fun (x, e) -> pow (Var x) (Q.of_int e)) (Polymath.Monomial.to_list m)))
       (Polymath.Polynomial.terms p))

let rec subst x e' e =
  match e with
  | Var y when y = x -> e'
  | Const _ | I | Var _ -> e
  | Sum es -> sum (List.map (subst x e') es)
  | Prod es -> prod (List.map (subst x e') es)
  | Pow (b, k) -> pow (subst x e' b) k

let free_vars e =
  let rec go acc = function
    | Var x -> x :: acc
    | Const _ | I -> acc
    | Sum es | Prod es -> List.fold_left go acc es
    | Pow (b, _) -> go acc b
  in
  List.sort_uniq String.compare (go [] e)

let cpow_q (z : Complex.t) (k : Q.t) =
  if Q.is_integer k then begin
    (* exact integer powers avoid log-branch noise for negative reals *)
    let n = Zmath.Bigint.to_int_exn (Q.num k) in
    if n = 0 then Complex.one
    else begin
      let rec go acc b n =
        if n = 0 then acc
        else go (if n land 1 = 1 then Complex.mul acc b else acc) (Complex.mul b b) (n lsr 1)
      in
      let p = go Complex.one z (abs n) in
      if n > 0 then p else Complex.div Complex.one p
    end
  end
  else if z = Complex.zero then
    if Q.sign k > 0 then Complex.zero
    else { Complex.re = infinity; im = 0.0 }
  else if Q.equal k Q.half then
    (* match C's sqrt/csqrt accuracy (correctly rounded on the reals):
       boundary iterations rely on sqrt of a perfect square being exact *)
    if z.Complex.im = 0.0 && z.Complex.re >= 0.0 then
      { Complex.re = Float.sqrt z.Complex.re; im = 0.0 }
    else Complex.sqrt z
  else if Q.equal k (Q.of_ints (-1) 2) then
    Complex.div Complex.one
      (if z.Complex.im = 0.0 && z.Complex.re >= 0.0 then
         { Complex.re = Float.sqrt z.Complex.re; im = 0.0 }
       else Complex.sqrt z)
  else Complex.pow z { Complex.re = Q.to_float k; im = 0.0 }

let rec eval_complex env = function
  | Const c -> { Complex.re = Q.to_float c; im = 0.0 }
  | I -> Complex.i
  | Var x -> env x
  | Sum es -> List.fold_left (fun acc e -> Complex.add acc (eval_complex env e)) Complex.zero es
  | Prod es -> List.fold_left (fun acc e -> Complex.mul acc (eval_complex env e)) Complex.one es
  | Pow (b, k) -> cpow_q (eval_complex env b) k

let eval_real env e =
  (eval_complex (fun x -> { Complex.re = env x; im = 0.0 }) e).Complex.re

let rec contains_fractional_pow = function
  | Const _ | I | Var _ -> false
  | Sum es | Prod es -> List.exists contains_fractional_pow es
  | Pow (b, k) -> (not (Q.is_integer k)) || contains_fractional_pow b

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Q.equal x y
  | I, I -> true
  | Var x, Var y -> x = y
  | Sum xs, Sum ys | Prod xs, Prod ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Pow (x, j), Pow (y, k) -> Q.equal j k && equal x y
  | _ -> false

let rec to_string e =
  let atom e =
    match e with
    | Const c when Q.sign c >= 0 && Q.is_integer c -> to_string e
    | Var _ | I -> to_string e
    | _ -> "(" ^ to_string e ^ ")"
  in
  match e with
  | Const c -> Q.to_string c
  | I -> "I"
  | Var x -> x
  | Sum es -> String.concat " + " (List.map to_string es)
  | Prod es -> String.concat "*" (List.map atom es)
  | Pow (b, k) ->
    if Q.equal k Q.half then "sqrt(" ^ to_string b ^ ")"
    else atom b ^ "^(" ^ Q.to_string k ^ ")"

let pp fmt e = Format.pp_print_string fmt (to_string e)
