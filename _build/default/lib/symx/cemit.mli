(** Emission of symbolic expressions as C code.

    Two modes mirror the paper's generated code (Figures 3 and 7):
    real-double emission using [sqrt]/[pow], and complex emission using
    [csqrt]/[cpow] wrapped in [creal] — required because symbolic roots
    can transit through complex intermediates whose imaginary part
    cancels (paper §IV-C). *)

type mode = Real | Complex

(** [classify e] picks the emission mode the way the paper's examples
    do: square roots alone are emitted real (their radicand is a
    discriminant, non-negative on the iteration domain), while any
    other fractional power (cube roots etc.) forces complex emission
    since the radicand may be negative inside the domain. *)
val classify : Expr.t -> mode

(** [rat_literal q] is a C double expression evaluating to [q] exactly
    when [q] is representable, e.g. ["3.0"] or ["(3.0/2.0)"]. *)
val rat_literal : Zmath.Rat.t -> string

(** [emit ~mode e] renders [e] as a C expression of type [double]
    ([mode = Real]) or [double complex] ([mode = Complex]). Variables
    are cast to [(double)] as in the paper's output. *)
val emit : mode:mode -> Expr.t -> string

(** [emit_floor ~mode e] renders [floor(e)] (with [creal] inserted in
    complex mode) — the index-recovery statement shape. *)
val emit_floor : mode:mode -> Expr.t -> string

(** [emit_poly_int p ~ty] renders polynomial [p] as an exact integer C
    expression of type [ty] (e.g. ["long"]): the integer-coefficient
    numerator divided by the coefficient-denominator LCM. The division
    is exact whenever [p] takes integer values on integer points (true
    of ranking polynomials). *)
val emit_poly_int : Polymath.Polynomial.t -> ty:string -> string
