lib/symx/simplify.mli: Expr Polymath
