lib/symx/cemit.mli: Expr Polymath Zmath
