lib/symx/expr.ml: Complex Float Format List Polymath String Zmath
