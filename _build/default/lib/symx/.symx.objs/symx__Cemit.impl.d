lib/symx/cemit.ml: Buffer Expr List Polymath Printf String Zmath
