lib/symx/simplify.ml: Expr List Polymath Zmath
