lib/symx/expr.mli: Complex Format Polymath Zmath
