(** Inversion of ranking polynomials (paper §IV).

    For each level k of the nest, the unknown index [ik] is recovered
    from the collapsed index [pc] by solving
    [r(i1,..,ik, lexmin tail) - pc = 0] symbolically: the trailing
    indices are set to their parametric lexicographic minima, making the
    equation univariate in [ik] with degree <= 4 for the supported
    nests. Among the symbolic candidate roots, the convenient one is
    selected by checking the values it produces on sampled concrete
    instances — never by its real/complex type (paper §IV-C) — and the
    last index is recovered by an exact polynomial formula. *)

module P = Polymath.Polynomial

type level_recovery =
  | Root of {
      var : string;
      expr : Symx.Expr.t;  (** closed-form root; floor it to get the index *)
      mode : Symx.Cemit.mode;  (** how the generated C must evaluate it *)
    }
      (** all levels but the innermost *)
  | Last of { var : string; poly : P.t }
      (** innermost level: an exact integer polynomial in the prefix
          indices and [pc] *)

type t = {
  nest : Nest.t;
  pc_var : string;
  ranking : P.t;
  trip_count : P.t;  (** in the parameters only *)
  r_sub : P.t array;
      (** [r_sub.(k)] is the ranking with levels > k at their tail
          minima: the rank of the first iteration with a given
          [i0..ik] prefix. Exactly the polynomials whose roots are the
          closed forms; also the monotone functions used by guarded and
          binary-search recovery. *)
  recoveries : level_recovery array;  (** one per level, outermost first *)
}

type error =
  | Degree_too_high of { var : string; degree : int }
      (** more than 4 nested loops depend on this index (paper §IV-B) *)
  | No_valid_root of { var : string; candidates : int }
      (** no symbolic candidate reproduced the sampled iterations *)
  | No_samples
      (** every sampled parameter valuation gave an empty nest *)

val error_to_string : error -> string

(** [invert ?pc_var ?sample_sizes nest] runs the full inversion.
    [pc_var] (default ["pc"]) names the collapsed index;
    [sample_sizes] (default [[3; 4; 6]]) are the parameter values used
    to validate and select candidate roots (each sample assigns
    parameter number [i] the value [size + 3*i]). *)
val invert :
  ?pc_var:string -> ?sample_sizes:int list -> Nest.t -> (t, error) result

(** [invert_exn] is {!invert}, raising [Failure] on error. *)
val invert_exn : ?pc_var:string -> ?sample_sizes:int list -> Nest.t -> t
