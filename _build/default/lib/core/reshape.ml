type t = { source : Inversion.t; target : Inversion.t }

let make ~source ~target =
  if source.Inversion.pc_var <> target.Inversion.pc_var then
    invalid_arg "Reshape.make: the two inversions must share the pc variable name";
  { source; target }

let source t = t.source
let target t = t.target

let recoveries t ~param = (Recovery.make t.source ~param, Recovery.make t.target ~param)

let compatible_at t ~param =
  let rs, rt = recoveries t ~param in
  Recovery.trip_count rs = Recovery.trip_count rt

let map_point t ~param target_idx =
  let rs, rt = recoveries t ~param in
  if Recovery.trip_count rs <> Recovery.trip_count rt then
    invalid_arg "Reshape.map_point: trip counts disagree under these parameters";
  let pc = Recovery.rank rt target_idx in
  Recovery.recover_binsearch rs pc

let iter t ~param f =
  let rs, rt = recoveries t ~param in
  if Recovery.trip_count rs <> Recovery.trip_count rt then
    invalid_arg "Reshape.iter: trip counts disagree under these parameters";
  let trip = Recovery.trip_count rs in
  if trip > 0 then begin
    let src = Recovery.first rs in
    let tgt = Recovery.first rt in
    (* both walks advance in rank order: one recovery total, then pure
       incrementation on each side *)
    for pc = 1 to trip do
      f tgt src;
      if pc < trip then begin
        ignore (Recovery.increment rs src);
        ignore (Recovery.increment rt tgt)
      end
    done
  end
