(** Executing one loop nest through the shape of another (paper §IX:
    "the computation of a loop nest from another loop nest of a
    different shape").

    Both nests are collapsed to their common rank space [1..T]: the
    iteration of rank [pc] in the target shape executes the statement
    instance of rank [pc] of the source nest. Because both nests
    enumerate their iterations in lexicographic = rank order, a walk of
    the target shape advances the source indices by plain §V
    incrementation — one costly recovery per chunk, exactly like
    ordinary collapsing. Typical use: execute a triangular computation
    through a rectangular nest (e.g. for devices and runtimes that only
    schedule rectangular grids).

    The mapping is only meaningful where the trip counts agree; this is
    checked per parameter valuation (the polynomial counts may differ
    as polynomials yet agree at the sizes of interest). *)

type t

(** [make ~source ~target] pairs two inversions. Iterator names may
    overlap freely (the two nests live in separate spaces); parameters
    are shared by name.
    @raise Invalid_argument when the two inversions use different pc
    variable names. *)
val make : source:Inversion.t -> target:Inversion.t -> t

val source : t -> Inversion.t
val target : t -> Inversion.t

(** [compatible_at t ~param] checks that both trip counts agree under
    the given parameter valuation. *)
val compatible_at : t -> param:(string -> int) -> bool

(** [map_point t ~param target_idx] is the source iteration executed at
    target iteration [target_idx] (rank-preserving bijection).
    @raise Invalid_argument when the trip counts disagree. *)
val map_point : t -> param:(string -> int) -> int array -> int array

(** [iter t ~param f] drives [f target_idx source_idx] over the whole
    common rank space in rank order, advancing both sides by
    incrementation (no per-iteration recovery). C generation for
    reshaped nests lives in {!Codegen.Xforms.reshape}. *)
val iter : t -> param:(string -> int) -> (int array -> int array -> unit) -> unit
