lib/core/recovery.mli: Inversion
