lib/core/inversion.mli: Nest Polymath Symx
