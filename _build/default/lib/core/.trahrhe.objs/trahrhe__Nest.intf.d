lib/core/nest.mli: Format Polyhedral Polymath
