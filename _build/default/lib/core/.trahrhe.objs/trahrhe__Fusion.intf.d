lib/core/fusion.mli: Inversion Polymath
