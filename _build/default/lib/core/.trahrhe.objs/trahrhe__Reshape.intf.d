lib/core/reshape.mli: Inversion
