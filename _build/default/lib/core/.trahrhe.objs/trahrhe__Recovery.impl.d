lib/core/recovery.ml: Array Complex Float Inversion List Nest Polymath Symx Zmath
