lib/core/ranking.ml: Array List Nest Polyhedral Polymath Zmath
