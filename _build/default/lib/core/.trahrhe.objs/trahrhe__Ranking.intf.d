lib/core/ranking.mli: Nest Polymath Zmath
