lib/core/inversion.ml: Array Complex Float List Nest Polyhedral Polymath Printf Ranking Rootsolve Symx Zmath
