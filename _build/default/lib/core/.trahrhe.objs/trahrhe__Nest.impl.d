lib/core/nest.ml: Array Format Hashtbl List Polyhedral Polymath Printf String Zmath
