lib/core/reshape.ml: Inversion Recovery
