lib/core/validate.ml: Array Format Inversion List Nest Recovery
