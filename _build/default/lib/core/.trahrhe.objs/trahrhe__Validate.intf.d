lib/core/validate.mli: Format Inversion
