lib/core/fusion.ml: Inversion List Polymath Recovery Zmath
