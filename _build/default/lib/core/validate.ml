type report = {
  iterations : int;
  trip_count_ok : bool;
  ranking_bijective : bool;
  closed_form_ok : int;
  guarded_ok : int;
  binsearch_ok : int;
  increment_ok : bool;
}

let check (inv : Inversion.t) ~param =
  let rec_ = Recovery.make inv ~param in
  let points = ref [] in
  Nest.iterate inv.Inversion.nest ~param (fun idx -> points := idx :: !points);
  let points = Array.of_list (List.rev !points) in
  let n = Array.length points in
  let trip_count_ok = Recovery.trip_count rec_ = n in
  let ranking_bijective = ref true in
  let closed_form_ok = ref 0 in
  let guarded_ok = ref 0 in
  let binsearch_ok = ref 0 in
  Array.iteri
    (fun i idx ->
      let pc = i + 1 in
      if Recovery.rank rec_ idx <> pc then ranking_bijective := false;
      if Recovery.recover rec_ pc = idx then incr closed_form_ok;
      if Recovery.recover_guarded rec_ pc = idx then incr guarded_ok;
      if Recovery.recover_binsearch rec_ pc = idx then incr binsearch_ok)
    points;
  let increment_ok =
    if n = 0 then true
    else begin
      let idx = Recovery.first rec_ in
      let ok = ref (idx = points.(0)) in
      let i = ref 0 in
      while !ok && Recovery.increment rec_ idx do
        incr i;
        ok := !i < n && idx = points.(!i)
      done;
      !ok && !i = n - 1
    end
  in
  { iterations = n;
    trip_count_ok;
    ranking_bijective = !ranking_bijective;
    closed_form_ok = !closed_form_ok;
    guarded_ok = !guarded_ok;
    binsearch_ok = !binsearch_ok;
    increment_ok }

let all_ok r =
  r.trip_count_ok && r.ranking_bijective
  && r.closed_form_ok = r.iterations
  && r.guarded_ok = r.iterations
  && r.binsearch_ok = r.iterations
  && r.increment_ok

let raw_floor_ok r =
  r.trip_count_ok && r.ranking_bijective
  && r.guarded_ok = r.iterations
  && r.binsearch_ok = r.iterations
  && r.increment_ok

let pp fmt r =
  Format.fprintf fmt
    "@[<v>iterations: %d@ trip count: %s@ ranking bijective: %b@ closed-form ok: %d/%d@ guarded \
     ok: %d/%d@ binary-search ok: %d/%d@ incrementation ok: %b@]"
    r.iterations
    (if r.trip_count_ok then "ok" else "MISMATCH")
    r.ranking_bijective r.closed_form_ok r.iterations r.guarded_ok r.iterations r.binsearch_ok
    r.iterations r.increment_ok
