(** Fusing loop nests of different shapes into one parallel loop
    (paper §IX: "the fusion of loop nests of different shapes").

    Given nests with trip counts T1, T2, ..., the fused loop runs
    [pc = 1 .. T1 + T2 + ...]; iteration [pc] executes segment [s] —
    the first with [offset_s < pc <= offset_s + T_s] — at the segment's
    local rank [pc - offset_s]. Each fused iteration belongs to exactly
    one original nest, so collapsing the fusion load-balances the
    concatenated work across threads in a single parallel region
    (instead of one fork/join per nest).

    Segments must be pairwise independent (no dependences across or
    inside them), as for ordinary collapsing. *)

type t

type segment = {
  index : int;  (** position in the fusion *)
  inversion : Inversion.t;
  offset : Polymath.Polynomial.t;
      (** sum of the preceding trip counts (in the parameters) *)
}

(** [fuse invs] builds the fusion, in the given order.
    @raise Invalid_argument on an empty list or mismatched pc
    variables. *)
val fuse : Inversion.t list -> t

val segments : t -> segment list

(** [total_trip t] is the fused trip count polynomial. *)
val total_trip : t -> Polymath.Polynomial.t

(** [locate t ~param pc] is [(segment, local_pc)] for a fused rank.
    @raise Invalid_argument when [pc] is out of range. *)
val locate : t -> param:(string -> int) -> int -> segment * int

(** [recover t ~param pc] recovers the executing segment and its
    original indices (exact binary-search recovery). *)
val recover : t -> param:(string -> int) -> int -> int * int array

(** [iter t ~param f] drives [f segment_index idx] over the fused
    range in order, one segment after the other, by incrementation.
    C generation lives in {!Codegen.Xforms.fused}. *)
val iter : t -> param:(string -> int) -> (int -> int array -> unit) -> unit
