(** Ranking Ehrhart polynomials (paper §III).

    The ranking polynomial [r(i1..ic)] of a nest maps each iteration to
    its 1-based lexicographic rank; it is a bijection onto
    [1 .. trip_count] and is monotonically increasing w.r.t. the
    lexicographic order of the indices. It is computed by splitting the
    lexicographic-order condition into a union of disjoint nest-form
    polyhedra and summing their Ehrhart polynomials — here via exact
    Bernoulli–Faulhaber summation. *)

module P = Polymath.Polynomial

(** [ranking n] is the ranking polynomial over the nest's iterators
    and parameters. *)
val ranking : Nest.t -> P.t

(** [trip_count n] is the total number of iterations as a polynomial in
    the parameters — the collapsed loop's upper bound. *)
val trip_count : Nest.t -> P.t

(** [rank_at n ~param idx] evaluates the ranking polynomial exactly at
    a concrete iteration (for tests and exact recovery). *)
val rank_at : Nest.t -> param:(string -> int) -> int array -> Zmath.Bigint.t
