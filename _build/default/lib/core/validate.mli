(** Brute-force validation of the collapsing pipeline.

    These checks enumerate an entire concrete iteration domain and
    verify, iteration by iteration, every invariant the transformation
    relies on. They are the correctness backbone of the test suite and
    are also exposed through the CLI ([trahrhe validate]). *)

type report = {
  iterations : int;  (** points enumerated *)
  trip_count_ok : bool;  (** polynomial trip count = enumeration size *)
  ranking_bijective : bool;  (** ranks are exactly 1..trip_count in order *)
  closed_form_ok : int;  (** iterations recovered exactly by raw closed forms *)
  guarded_ok : int;  (** ... by guarded closed forms *)
  binsearch_ok : int;  (** ... by binary search *)
  increment_ok : bool;  (** §V incrementation walks the domain in order *)
}

(** [check inv ~param] enumerates the domain under concrete parameter
    values and exercises ranking + all three recovery strategies on
    every iteration. *)
val check : Inversion.t -> param:(string -> int) -> report

(** [all_ok r] means every invariant held on every iteration. *)
val all_ok : report -> bool

(** [raw_floor_ok r] is {!all_ok} minus the raw closed-form criterion —
    useful at sizes where plain [floor] is expected to suffer float
    rounding while the guarded and binary-search strategies must still
    be exact. *)
val raw_floor_ok : report -> bool

val pp : Format.formatter -> report -> unit
