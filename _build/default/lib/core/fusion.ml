module P = Polymath.Polynomial

type segment = { index : int; inversion : Inversion.t; offset : P.t }

type t = { segs : segment list; total : P.t }

let fuse invs =
  if invs = [] then invalid_arg "Fusion.fuse: empty";
  let pc = (List.hd invs).Inversion.pc_var in
  List.iter
    (fun (inv : Inversion.t) ->
      if inv.Inversion.pc_var <> pc then
        invalid_arg "Fusion.fuse: all segments must share the pc variable name")
    invs;
  let _, segs =
    List.fold_left
      (fun (offset, acc) (inv : Inversion.t) ->
        let seg = { index = List.length acc; inversion = inv; offset } in
        (P.add offset inv.Inversion.trip_count, seg :: acc))
      (P.zero, []) invs
  in
  let segs = List.rev segs in
  { segs; total = List.fold_left (fun a (i : Inversion.t) -> P.add a i.Inversion.trip_count) P.zero invs }

let segments t = t.segs
let total_trip t = t.total

let eval_int ~param p =
  Zmath.Bigint.to_int_exn
    (Zmath.Rat.to_bigint_exn (P.eval (fun x -> Zmath.Rat.of_int (param x)) p))

let locate t ~param pc =
  let total = eval_int ~param t.total in
  if pc < 1 || pc > total then invalid_arg "Fusion.locate: pc out of range";
  let rec go = function
    | [] -> invalid_arg "Fusion.locate: unreachable"
    | seg :: rest ->
      let off = eval_int ~param seg.offset in
      let trip = eval_int ~param seg.inversion.Inversion.trip_count in
      if pc <= off + trip then (seg, pc - off) else go rest
  in
  go t.segs

let recover t ~param pc =
  let seg, local = locate t ~param pc in
  let rc = Recovery.make seg.inversion ~param in
  (seg.index, Recovery.recover_binsearch rc local)

let iter t ~param f =
  List.iter
    (fun seg ->
      let rc = Recovery.make seg.inversion ~param in
      let trip = Recovery.trip_count rc in
      if trip > 0 then begin
        let idx = Recovery.first rc in
        for local = 1 to trip do
          f seg.index idx;
          if local < trip then ignore (Recovery.increment rc idx)
        done
      end)
    t.segs
