type stmt =
  | Raw of string
  | Decl of { ty : string; name : string; init : string option }
  | Assign of string * string
  | If of { cond : string; then_ : stmt list; else_ : stmt list }
  | For of { init : string; cond : string; step : string; body : stmt list }
  | While of { cond : string; body : stmt list }
  | Pragma of string
  | Comment of string
  | Block of stmt list
