(** Generation of collapsed OpenMP C loops.

    One generator per code shape presented in the paper:

    - {!naive}: recovery at every iteration (Fig. 3);
    - {!per_thread}: costly recovery once per thread, then §V
      incremental index advance (Fig. 4);
    - {!chunked}: recovery once per [schedule(static, CHUNK)] chunk
      (§V);
    - {!simd}: per-thread recovery + a [vlength]-deep index buffer and
      an [omp simd] compute loop (§VI-A);
    - {!gpu_warp}: the warp-coalesced distribution scheme, emitted as
      portable C emulating [W] threads of a warp (§VI-B);
    - {!original}: the untransformed nest with an OpenMP pragma on the
      outermost loop, for baseline builds.

    All generators take the loop body as statements referring to the
    original index names; index variables are declared by the generated
    code and listed in the OpenMP [private] clause. *)

type config = {
  counter_ty : string;  (** C type of indices and [pc] (default "long") *)
  schedule : string;  (** OpenMP schedule clause body (default "static") *)
  extra_private : string list;  (** additional private variables *)
  guarded : bool;
      (** when true, follow each floored closed form with an exact
          integer adjustment based on the substituted ranking — immune
          to floating rounding (library extension, default false) *)
  declare_indices : bool;  (** emit index declarations (default true) *)
}

val default_config : config

(** [trip_count_expr inv ~ty] is the collapsed loop's upper bound as an
    exact integer C expression over the parameters. *)
val trip_count_expr : Trahrhe.Inversion.t -> ty:string -> string

(** [recovery_stmts ?config inv] is the §IV index-recovery statement
    sequence ([i1 = floor(...); ...; ic = exact formula]). *)
val recovery_stmts : ?config:config -> Trahrhe.Inversion.t -> C_ast.stmt list

(** [increment_stmts ?config inv] is the §V incrementation advancing
    the indices to the next iteration as the original nest would. *)
val increment_stmts : ?config:config -> Trahrhe.Inversion.t -> C_ast.stmt list

val naive : ?config:config -> Trahrhe.Inversion.t -> body:C_ast.stmt list -> C_ast.stmt list

val per_thread :
  ?config:config -> Trahrhe.Inversion.t -> body:C_ast.stmt list -> C_ast.stmt list

val chunked :
  ?config:config -> chunk:int -> Trahrhe.Inversion.t -> body:C_ast.stmt list -> C_ast.stmt list

(** [simd ~vlength inv ~body_of] generates the §VI-A scheme;
    [body_of subst] must produce the body with every original index
    variable [v] replaced by [subst v] (a C expression indexing the
    per-thread tuple buffer). *)
val simd :
  ?config:config ->
  vlength:int ->
  Trahrhe.Inversion.t ->
  body_of:((string -> string) -> C_ast.stmt list) ->
  C_ast.stmt list

val gpu_warp :
  ?config:config -> warp:int -> Trahrhe.Inversion.t -> body:C_ast.stmt list -> C_ast.stmt list

(** [original nest ~parallel ~schedule ~body] prints the untransformed
    nest; when [parallel], an [omp parallel for] pragma with the given
    schedule is placed on the outermost loop. *)
val original :
  ?config:config ->
  Trahrhe.Nest.t ->
  parallel:bool ->
  schedule:string ->
  body:C_ast.stmt list ->
  C_ast.stmt list
