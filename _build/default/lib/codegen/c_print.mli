(** Pretty-printing of the C statement AST. *)

(** [to_string ?indent stmts] renders the statements with 2-space
    indentation starting at level [indent] (default 0). *)
val to_string : ?indent:int -> C_ast.stmt list -> string

val pp : Format.formatter -> C_ast.stmt list -> unit
