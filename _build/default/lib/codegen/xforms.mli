(** C generation for the §IX extension transformations: reshaped and
    fused nests (runtime counterparts live in {!Trahrhe.Reshape} and
    {!Trahrhe.Fusion}). *)

(** [reshape ?config r ~body] emits the *target* nest's loops — e.g. a
    plain rectangular nest, which OpenMP can itself [collapse] —
    executing the *source* nest's statement instances in rank order:
    at each thread's first iteration the fused rank
    [pc = r_target(target indices)] is computed exactly and the source
    indices are recovered from it; afterwards both index sets advance
    by §V incrementation. [body] refers to the source iterator names.
    @raise Invalid_argument if source and target share iterator
    names. *)
val reshape :
  ?config:Schemes.config -> Trahrhe.Reshape.t -> body:C_ast.stmt list -> C_ast.stmt list

(** [fused ?config f ~bodies] emits one collapsed parallel loop running
    the concatenation of all fused segments; [bodies] gives each
    segment's statement list (same order as the fusion). Iterator
    names must be pairwise distinct across segments.
    @raise Invalid_argument on name clashes or arity mismatch. *)
val fused :
  ?config:Schemes.config -> Trahrhe.Fusion.t -> bodies:C_ast.stmt list list -> C_ast.stmt list
