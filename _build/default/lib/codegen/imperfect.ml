open C_ast
module A = Polymath.Affine

type level_stmts = { pre : stmt list; post : stmt list }

let sink ?(config = Schemes.default_config) (nest : Trahrhe.Nest.t) ~levels ~innermost =
  let ty = config.Schemes.counter_ty in
  let nest_levels = Array.of_list nest.Trahrhe.Nest.levels in
  let d = Array.length nest_levels in
  if List.length levels <> d - 1 then
    invalid_arg "Imperfect.sink: need pre/post statements for every non-innermost level";
  let bound_expr a = Symx.Cemit.emit_poly_int (A.to_poly a) ~ty in
  (* guard: iterators deeper than level k all at first (resp. last)
     position of their range *)
  let guard ~at_first k =
    List.init
      (d - 1 - k)
      (fun off ->
        let l = nest_levels.(k + 1 + off) in
        if at_first then Printf.sprintf "%s == %s" l.Trahrhe.Nest.var (bound_expr l.Trahrhe.Nest.lower)
        else Printf.sprintf "%s == (%s) - 1" l.Trahrhe.Nest.var (bound_expr l.Trahrhe.Nest.upper))
    |> String.concat " && "
  in
  let pres =
    List.mapi
      (fun k (ls : level_stmts) ->
        if ls.pre = [] then []
        else [ If { cond = guard ~at_first:true k; then_ = ls.pre; else_ = [] } ])
      levels
    |> List.concat
  in
  let posts =
    List.mapi (fun k (ls : level_stmts) -> (k, ls.post)) levels
    |> List.rev
    |> List.concat_map (fun (k, post) ->
           if post = [] then []
           else [ If { cond = guard ~at_first:false k; then_ = post; else_ = [] } ])
  in
  pres @ innermost @ posts

let collapse ?(config = Schemes.default_config) (inv : Trahrhe.Inversion.t) ~levels ~innermost =
  let body = sink ~config inv.Trahrhe.Inversion.nest ~levels ~innermost in
  Schemes.per_thread ~config inv ~body
