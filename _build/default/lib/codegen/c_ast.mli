(** A small C statement AST, sufficient for emitting collapsed loops.

    Expressions are carried as preformatted strings (produced by
    {!Symx.Cemit} or by the front-end); the AST only structures
    statements so the printer can indent and brace correctly. *)

type stmt =
  | Raw of string  (** verbatim statement (no trailing semicolon added if present) *)
  | Decl of { ty : string; name : string; init : string option }
  | Assign of string * string  (** lvalue = expr; *)
  | If of { cond : string; then_ : stmt list; else_ : stmt list }
  | For of { init : string; cond : string; step : string; body : stmt list }
  | While of { cond : string; body : stmt list }
  | Pragma of string  (** emitted as [#pragma ...] at column 0 *)
  | Comment of string
  | Block of stmt list  (** braces without a header *)
