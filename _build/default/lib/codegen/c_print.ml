open C_ast

let to_string ?(indent = 0) stmts =
  let buf = Buffer.create 256 in
  let pad lvl = String.make (2 * lvl) ' ' in
  let line lvl s =
    Buffer.add_string buf (pad lvl);
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let rec go lvl = function
    | Raw s ->
      (* allow multi-line raw fragments, reindenting each line; the
         fragment is copied verbatim (semicolons are the caller's job) *)
      String.split_on_char '\n' s |> List.iter (fun l -> line lvl (String.trim l))
    | Decl { ty; name; init = None } -> line lvl (Printf.sprintf "%s %s;" ty name)
    | Decl { ty; name; init = Some e } -> line lvl (Printf.sprintf "%s %s = %s;" ty name e)
    | Assign (lv, e) -> line lvl (Printf.sprintf "%s = %s;" lv e)
    | If { cond; then_; else_ = [] } ->
      line lvl (Printf.sprintf "if (%s) {" cond);
      List.iter (go (lvl + 1)) then_;
      line lvl "}"
    | If { cond; then_; else_ } ->
      line lvl (Printf.sprintf "if (%s) {" cond);
      List.iter (go (lvl + 1)) then_;
      line lvl "} else {";
      List.iter (go (lvl + 1)) else_;
      line lvl "}"
    | For { init; cond; step; body } ->
      line lvl (Printf.sprintf "for (%s; %s; %s) {" init cond step);
      List.iter (go (lvl + 1)) body;
      line lvl "}"
    | While { cond; body } ->
      line lvl (Printf.sprintf "while (%s) {" cond);
      List.iter (go (lvl + 1)) body;
      line lvl "}"
    | Pragma p -> Buffer.add_string buf (Printf.sprintf "#pragma %s\n" p)
    | Comment c -> line lvl (Printf.sprintf "/* %s */" c)
    | Block body ->
      line lvl "{";
      List.iter (go (lvl + 1)) body;
      line lvl "}"
  in
  List.iter (go indent) stmts;
  Buffer.contents buf

let pp fmt stmts = Format.pp_print_string fmt (to_string stmts)
