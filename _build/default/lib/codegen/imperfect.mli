(** Collapsing imperfectly nested loops (paper §IX outlook).

    An imperfect nest carries statements between loop levels:

    {v
    for (i ...) {
      S_pre_1;
      for (j ...) {
        S_pre_2;
        body;
        S_post_2;
      }
      S_post_1;
    }
    v}

    The classic statement-sinking normalization turns this into a
    perfect nest whose body guards each sunk statement by a position
    test on the inner iterators: [S_pre_k] runs when every iterator
    deeper than [k] sits at its lower bound, [S_post_k] when every one
    sits at its last value. The guards are exact under the nest model's
    assumption that inner ranges are nonempty (a level that can be
    empty would skip its parent's pre/post statements — rejected).

    The resulting perfect body collapses like any other; this module
    produces the guarded body to feed {!Schemes}. *)

type level_stmts = {
  pre : C_ast.stmt list;  (** before the next-inner loop *)
  post : C_ast.stmt list;  (** after the next-inner loop *)
}

(** [sink ?config nest ~levels ~innermost] builds the guarded perfect
    body: [levels] holds the pre/post statements of each non-innermost
    level (outermost first, length [depth - 1]) and [innermost] the
    innermost loop's body.
    @raise Invalid_argument on a length mismatch. *)
val sink :
  ?config:Schemes.config ->
  Trahrhe.Nest.t ->
  levels:level_stmts list ->
  innermost:C_ast.stmt list ->
  C_ast.stmt list

(** [collapse ?config inv ~levels ~innermost] is {!sink} composed with
    the per-thread collapsing scheme (Fig. 4 shape) on the guarded
    body. *)
val collapse :
  ?config:Schemes.config ->
  Trahrhe.Inversion.t ->
  levels:level_stmts list ->
  innermost:C_ast.stmt list ->
  C_ast.stmt list
