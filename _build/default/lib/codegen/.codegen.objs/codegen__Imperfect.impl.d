lib/codegen/imperfect.ml: Array C_ast List Polymath Printf Schemes String Symx Trahrhe
