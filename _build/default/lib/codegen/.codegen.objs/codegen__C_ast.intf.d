lib/codegen/c_ast.mli:
