lib/codegen/schemes.ml: Array C_ast List Polymath Printf String Symx Trahrhe
