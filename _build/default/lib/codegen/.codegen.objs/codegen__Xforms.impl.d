lib/codegen/xforms.ml: Array C_ast List Polyhedral Polymath Printf Schemes String Symx Trahrhe
