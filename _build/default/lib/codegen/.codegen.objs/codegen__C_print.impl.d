lib/codegen/c_print.ml: Buffer C_ast Format List Printf String
