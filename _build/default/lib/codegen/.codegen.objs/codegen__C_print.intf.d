lib/codegen/c_print.mli: C_ast Format
