lib/codegen/schemes.mli: C_ast Trahrhe
