lib/codegen/c_ast.ml:
