lib/codegen/imperfect.mli: C_ast Schemes Trahrhe
