lib/codegen/xforms.mli: C_ast Schemes Trahrhe
