(* Tiled triangular kernels: Pluto's --tile on a triangular nest leaves
   a triangular *tile* space with incomplete diagonal tiles — the load
   imbalance the paper tiles-and-collapses away. The collapsed loops
   are the two tile loops; the parameter is the number NT of tiles per
   dimension and the tile size is the constant T below. *)

open Shape

let tile = 16

(* strictly-upper version (correlation): intra-tile points j > i *)
let points_strict it jt = if jt > it then tile * tile else tile * (tile - 1) / 2

(* inclusive-upper version (covariance): intra-tile points j >= i *)
let points_incl it jt = if jt > it then tile * tile else tile * (tile + 1) / 2

let tiled_nest () =
  Trahrhe.Nest.make ~params:[ "NT" ]
    [ { var = "it"; lower = aff [] 0; upper = aff [ ("NT", 1) ] 0 };
      { var = "jt"; lower = aff [ ("it", 1) ] 0; upper = aff [ ("NT", 1) ] 0 } ]

let make_tiled ~name ~description ~points =
  let nest = tiled_nest () in
  (* one (i,j) point costs [tile] inner iterations *)
  let outer_costs ~n =
    Array.init n (fun it ->
        let s = ref 0 in
        for jt = it to n - 1 do
          s := !s + (points it jt * tile)
        done;
        float_of_int !s)
  in
  let collapsed_costs ~n =
    let costs = Array.make (n * (n + 1) / 2) 0.0 in
    let q = ref 0 in
    for it = 0 to n - 1 do
      for jt = it to n - 1 do
        costs.(!q) <- float_of_int (points it jt * tile);
        incr q
      done
    done;
    costs
  in
  let strict = points 0 0 = tile * (tile - 1) / 2 in
  let setup nt =
    let n = nt * tile in
    let b = init_mat n (fun r c -> float_of_int (((r * 7) + c) mod 13) /. 3.0) in
    let c = init_mat n (fun r c -> float_of_int ((r - (2 * c)) mod 11) /. 5.0) in
    let a = Array.make (n * n) 0.0 in
    (a, b, c, n)
  in
  let tile_body a b c n it jt =
    for i = it * tile to (it * tile) + tile - 1 do
      let j0 = if strict then max (i + 1) (jt * tile) else max i (jt * tile) in
      for j = j0 to (jt * tile) + tile - 1 do
        let s = ref 0.0 in
        for k = 0 to tile - 1 do
          s := !s +. (b.((k * n) + i) *. c.((k * n) + j))
        done;
        a.((i * n) + j) <- a.((i * n) + j) +. !s
      done
    done
  in
  let serial_original ~n:nt =
    let a, b, c, n = setup nt in
    for it = 0 to nt - 1 do
      for jt = it to nt - 1 do
        tile_body a b c n it jt
      done
    done;
    checksum a
  in
  let serial_collapsed ~n:nt ~recoveries =
    let a, b, c, n = setup nt in
    let kd = Kernel.find name |> Option.get in
    let rc = Kernel.recovery kd ~n:nt in
    let trip = nt * (nt + 1) / 2 in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let it = ref idx.(0) and jt = ref idx.(1) in
        for _ = 1 to len do
          tile_body a b c n !it !jt;
          incr jt;
          if !jt >= nt then begin
            incr it;
            jt := !it
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum a
  in
  Kernel.register
    { name;
      description;
      family = "tiled-triangular";
      collapsed = 2;
      total_loops = 5;
      nest;
      param_map = (fun n _ -> n);
      default_n = 120;
      fig10_n = 24;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

let correlation_tiled =
  make_tiled ~name:"correlation_tiled" ~points:points_strict
    ~description:"Pluto-style tiled correlation; the two triangular tile loops are collapsed"

let covariance_tiled =
  make_tiled ~name:"covariance_tiled" ~points:points_incl
    ~description:"Pluto-style tiled covariance; the two triangular tile loops are collapsed"
