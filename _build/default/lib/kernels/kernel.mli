(** Benchmark kernels: the evaluation workloads of the paper's §VII.

    The paper evaluates 9 Polybench kernels (transformed into
    non-rectangular nests by Pluto, some tiled) plus two triangular
    matrix kernels, [utma] and [ltmp]. Only correlation, covariance,
    symm (and their tiled variants), utma and ltmp are named in the
    paper; the remaining Polybench picks are reconstructed here with
    the same iteration-space families the paper lists (triangular,
    tetrahedral, trapezoidal, rhomboidal, parallelepiped) — see
    DESIGN.md.

    Each kernel carries:
    - the nest model of its collapsed loops,
    - cost generators for the Figure 9 schedule simulations (work per
      outermost iteration for the original parallelization; work per
      collapsed iteration in lexicographic order for the transformed
      one),
    - real serial OCaml implementations, original and collapsed (the
      §V per-chunk recovery scheme), for the Figure 10 overhead
      measurements. *)

type t = {
  name : string;
  description : string;
  family : string;  (** iteration-space family, e.g. "triangular" *)
  collapsed : int;  (** number of loops collapsed *)
  total_loops : int;  (** loops of the full kernel nest *)
  nest : Trahrhe.Nest.t;  (** model of the collapsed loops *)
  param_map : int -> string -> int;
      (** binds each nest parameter given the headline size [n]
          (usually every parameter is [n]; e.g. fdtd_skewed fixes its
          wavefront count) *)
  default_n : int;  (** size for Figure 9 simulations *)
  fig10_n : int;  (** size for native serial measurements *)
  outer_costs : n:int -> float array;
      (** cost of each outermost-loop iteration (work units) *)
  collapsed_costs : n:int -> float array;
      (** cost of each collapsed iteration, lexicographic order *)
  serial_original : n:int -> float;
      (** run the real kernel serially; returns a checksum *)
  serial_collapsed : n:int -> recoveries:int -> float;
      (** run the collapsed form serially with [recoveries] closed-form
          recoveries spread over the pc range (§V); returns the same
          checksum *)
}

(** [param_of t ~n] is the parameter valuation of [t.nest] at headline
    size [n] (via [t.param_map]). *)
val param_of : t -> n:int -> string -> int

(** [inversion t] is the kernel's (lazily cached) inversion. *)
val inversion : t -> Trahrhe.Inversion.t

(** [recovery t ~n] is the runtime recovery compiled at size [n]. *)
val recovery : t -> n:int -> Trahrhe.Recovery.t

(** [chunk_starts ~trip ~recoveries] splits [1..trip] into [recoveries]
    balanced chunks and lists their starting pc values. *)
val chunk_starts : trip:int -> recoveries:int -> (int * int) list
(** ... as [(start_pc, len)] pairs. *)

(** [register k] adds a kernel to the global registry (done by each
    kernel module at link time). *)
val register : t -> t

(** [all ()] lists registered kernels in registration order. *)
val all : unit -> t list

(** [find name] looks a kernel up by name. *)
val find : string -> t option
