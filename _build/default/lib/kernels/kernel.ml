type t = {
  name : string;
  description : string;
  family : string;
  collapsed : int;
  total_loops : int;
  nest : Trahrhe.Nest.t;
  param_map : int -> string -> int;
  default_n : int;
  fig10_n : int;
  outer_costs : n:int -> float array;
  collapsed_costs : n:int -> float array;
  serial_original : n:int -> float;
  serial_collapsed : n:int -> recoveries:int -> float;
}

let param_of t ~n x =
  if List.mem x t.nest.Trahrhe.Nest.params then t.param_map n x
  else invalid_arg ("Kernel.param_of: unknown parameter " ^ x)

let inversions : (string, Trahrhe.Inversion.t) Hashtbl.t = Hashtbl.create 16

let inversion t =
  match Hashtbl.find_opt inversions t.name with
  | Some inv -> inv
  | None ->
    let inv = Trahrhe.Inversion.invert_exn t.nest in
    Hashtbl.add inversions t.name inv;
    inv

let recovery t ~n = Trahrhe.Recovery.make (inversion t) ~param:(param_of t ~n)

let chunk_starts ~trip ~recoveries =
  let r = max 1 (min recoveries trip) in
  let q = trip / r and rem = trip mod r in
  let rec go start k acc =
    if k = r then List.rev acc
    else begin
      let len = if k < rem then q + 1 else q in
      go (start + len) (k + 1) ((start, len) :: acc)
    end
  in
  if trip = 0 then [] else go 1 0 []

let registry : t list ref = ref []

let register k =
  registry := k :: !registry;
  k

let all () = List.rev !registry
let find name = List.find_opt (fun k -> k.name = name) (all ())
