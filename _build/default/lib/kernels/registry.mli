(** Forces linkage of every kernel module and lists them.

    OCaml only initializes library modules that are referenced, so the
    registry names each kernel value explicitly; [kernels] is the
    paper's Figure 9 bar order. *)

val kernels : Kernel.t list

(** [find name] is the kernel registered under [name]. *)
val find : string -> Kernel.t option

(** [names] lists kernel names in bar order. *)
val names : string list
