lib/kernels/shape.ml: Array Kernel List Polymath Trahrhe Zmath
