lib/kernels/kernel.ml: Hashtbl List Trahrhe
