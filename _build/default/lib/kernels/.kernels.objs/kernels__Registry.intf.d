lib/kernels/registry.mli: Kernel
