lib/kernels/shapes2.ml: Array Kernel List Option Shape Trahrhe
