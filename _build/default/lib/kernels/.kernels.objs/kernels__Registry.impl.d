lib/kernels/registry.ml: Kernel List Prism Shapes2 Tiled Triangular
