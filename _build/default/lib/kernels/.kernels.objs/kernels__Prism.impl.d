lib/kernels/prism.ml: Array Kernel List Option Shape Trahrhe
