lib/kernels/tiled.ml: Array Kernel List Option Shape Trahrhe
