lib/kernels/triangular.ml: Array Kernel List Option Shape Trahrhe
