lib/kernels/kernel.mli: Trahrhe
