lib/kernels/shape.mli: Polymath Trahrhe
