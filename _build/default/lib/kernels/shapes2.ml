(* Trapezoidal and rhomboidal kernels (reconstructed Polybench-style
   picks covering the remaining iteration-space families of §I). *)

open Shape

(* dynprog: trapezoidal domain i in [0,N), j in [0, i+M) with M = N.
   Both loops collapsed and innermost — the Fig. 10 case where recovery
   overhead is NOT amortized by an inner loop. *)
let dynprog =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1); ("N", 1) ] 0 } ]
  in
  let trip n = (n * n) + (n * (n - 1) / 2) in
  let outer_costs ~n = Array.init n (fun i -> float_of_int (i + n)) in
  let collapsed_costs ~n = Array.make (trip n) 1.0 in
  let setup n =
    let c = Array.make (2 * n * n) 0.0 in
    let w = Array.init (2 * n * n) (fun q -> float_of_int ((q * 7) mod 37) /. 9.0) in
    (c, w)
  in
  let serial_original ~n =
    let c, w = setup n in
    for i = 0 to n - 1 do
      for j = 0 to i + n - 1 do
        c.((i * 2 * n) + j) <- w.((i * 2 * n) + j) +. float_of_int (i + j)
      done
    done;
    checksum c
  in
  let serial_collapsed ~n ~recoveries =
    let c, w = setup n in
    let kd = Kernel.find "dynprog" |> Option.get in
    let rc = Kernel.recovery kd ~n in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let i = ref idx.(0) and j = ref idx.(1) in
        for _ = 1 to len do
          c.((!i * 2 * n) + !j) <- w.((!i * 2 * n) + !j) +. float_of_int (!i + !j);
          incr j;
          if !j >= !i + n then begin
            incr i;
            j := 0
          end
        done)
      (Kernel.chunk_starts ~trip:(trip n) ~recoveries);
    checksum c
  in
  Kernel.register
    { name = "dynprog";
      description = "trapezoidal dynamic-programming style sweep; collapsed loops are innermost";
      family = "trapezoidal";
      collapsed = 2;
      total_loops = 2;
      nest;
      param_map = (fun n _ -> n);
      default_n = 1600;
      fig10_n = 1000;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

(* fdtd_skewed: rhomboidal domain t in [0,T), i in [t, t+N) after time
   skewing, with T a small number of wavefronts (the parallelism the
   outer loop alone exposes is scarce — the motivating case for
   collapsing rhomboids: 12 threads over 28 wavefronts leaves a 3-vs-2
   rows imbalance that collapsing erases). Inner stencil window of
   fixed width [win]. *)
let fdtd_waves = 28

let fdtd_win = 32

let fdtd_skewed =
  let nest =
    Trahrhe.Nest.make ~params:[ "T"; "N" ]
      [ { var = "t"; lower = aff [] 0; upper = aff [ ("T", 1) ] 0 };
        { var = "i"; lower = aff [ ("t", 1) ] 0; upper = aff [ ("t", 1); ("N", 1) ] 0 } ]
  in
  let outer_costs ~n = Array.make fdtd_waves (float_of_int (n * fdtd_win)) in
  let collapsed_costs ~n = Array.make (fdtd_waves * n) (float_of_int fdtd_win) in
  let setup n =
    let e =
      Array.init (n + fdtd_waves + fdtd_win) (fun q -> float_of_int ((q * 3) mod 17) /. 5.0)
    in
    let h = Array.make (n + fdtd_waves + fdtd_win) 0.0 in
    (e, h)
  in
  let body e h t i =
    let s = ref 0.0 in
    for w = 0 to fdtd_win - 1 do
      s := !s +. e.(i - t + w)
    done;
    h.(i) <- h.(i) +. (!s /. float_of_int (t + 1))
  in
  let serial_original ~n =
    let e, h = setup n in
    for t = 0 to fdtd_waves - 1 do
      for i = t to t + n - 1 do
        body e h t i
      done
    done;
    checksum h
  in
  let serial_collapsed ~n ~recoveries =
    let e, h = setup n in
    let kd = Kernel.find "fdtd_skewed" |> Option.get in
    let rc = Kernel.recovery kd ~n in
    let trip = fdtd_waves * n in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        (* walk the chunk row-span by row-span with tight inner loops,
           as an optimizing compiler renders the §V scheme *)
        let t = ref idx.(0) and i0 = ref idx.(1) in
        let remaining = ref len in
        while !remaining > 0 do
          let row_end = !t + n - 1 in
          let span = min !remaining (row_end - !i0 + 1) in
          let tw = !t in
          for i = !i0 to !i0 + span - 1 do
            body e h tw i
          done;
          remaining := !remaining - span;
          if !remaining > 0 then begin
            incr t;
            i0 := !t
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum h
  in
  Kernel.register
    { name = "fdtd_skewed";
      description =
        "time-skewed stencil over a rhomboidal domain with few wavefronts (28) — collapsing \
         exposes the parallelism the outer loop lacks";
      family = "rhomboidal";
      collapsed = 2;
      total_loops = 3;
      nest;
      param_map = (fun n x -> if x = "T" then fdtd_waves else n);
      default_n = 40000;
      fig10_n = 12000;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }
