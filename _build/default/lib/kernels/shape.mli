(** Helpers shared by the kernel definitions. *)

module A = Polymath.Affine

(** [aff terms c] is the affine expression [sum k*v + c] from integer
    coefficients. *)
val aff : (string * int) list -> int -> A.t

(** [init_mat n f] is an [n*n] row-major float array with
    [f row col]. *)
val init_mat : int -> (int -> int -> float) -> float array

(** [checksum a] is a position-weighted sum, stable under evaluation
    order, used to compare original vs collapsed kernel runs. *)
val checksum : float array -> float

(** [run_collapsed rc ~trip ~recoveries body] drives the §V collapsed
    serial execution: split [1..trip] into [recoveries] chunks, do one
    costly (guarded) recovery per chunk, then advance indices by
    incrementation; [body] receives the index array valid for that
    iteration. *)
val run_collapsed :
  Trahrhe.Recovery.t -> trip:int -> recoveries:int -> (int array -> unit) -> unit
