module A = Polymath.Affine
module Q = Zmath.Rat

let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c)

let init_mat n f =
  let a = Array.make (n * n) 0.0 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      a.((r * n) + c) <- f r c
    done
  done;
  a

let checksum a =
  let s = ref 0.0 in
  Array.iteri (fun q v -> s := !s +. (v *. float_of_int ((q mod 97) + 1))) a;
  !s

let run_collapsed rc ~trip ~recoveries body =
  List.iter
    (fun (start, len) ->
      let idx = Trahrhe.Recovery.recover_guarded rc start in
      for q = 0 to len - 1 do
        body idx;
        if q < len - 1 then ignore (Trahrhe.Recovery.increment rc idx)
      done)
    (Kernel.chunk_starts ~trip ~recoveries)
