(* Fully-collapsed 3-deep kernels (all loops collapsed — the paper's
   Fig. 10 calls out covariance and symm as the cases where recovery
   overhead is most visible because no inner loop amortizes it). *)

open Shape

(* covariance: cov[i][j] accumulated over k, j >= i (upper prism) *)
let covariance =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "k"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let outer_costs ~n = Array.init n (fun i -> float_of_int ((n - i) * n)) in
  let collapsed_costs ~n = Array.make (n * (n + 1) / 2 * n) 1.0 in
  let setup n =
    let d = init_mat n (fun r c -> float_of_int (((r * 5) + (3 * c)) mod 31) /. 8.0) in
    let cov = Array.make (n * n) 0.0 in
    (cov, d)
  in
  let serial_original ~n =
    let cov, d = setup n in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        for k = 0 to n - 1 do
          cov.((i * n) + j) <- cov.((i * n) + j) +. (d.((k * n) + i) *. d.((k * n) + j))
        done
      done
    done;
    checksum cov
  in
  let serial_collapsed ~n ~recoveries =
    let cov, d = setup n in
    let kd = Kernel.find "covariance" |> Option.get in
    let rc = Kernel.recovery kd ~n in
    let trip = n * (n + 1) / 2 * n in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let i = ref idx.(0) and j = ref idx.(1) and k = ref idx.(2) in
        for _ = 1 to len do
          cov.((!i * n) + !j) <- cov.((!i * n) + !j) +. (d.((!k * n) + !i) *. d.((!k * n) + !j));
          incr k;
          if !k >= n then begin
            incr j;
            if !j >= n then begin
              incr i;
              j := !i
            end;
            k := 0
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum cov
  in
  Kernel.register
    { name = "covariance";
      description = "covariance accumulation with all three loops collapsed (upper prism)";
      family = "tetrahedral";
      collapsed = 3;
      total_loops = 3;
      nest;
      param_map = (fun n _ -> n);
      default_n = 220;
      fig10_n = 150;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

(* symm: C[i][j] for j <= i, accumulated over a dense k (lower prism) *)
let symm =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 };
        { var = "k"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let outer_costs ~n = Array.init n (fun i -> float_of_int ((i + 1) * n)) in
  let collapsed_costs ~n = Array.make (n * (n + 1) / 2 * n) 1.0 in
  let setup n =
    let a = init_mat n (fun r c -> float_of_int (((2 * r) + c) mod 15) /. 4.0) in
    let b = init_mat n (fun r c -> float_of_int ((r + (7 * c)) mod 21) /. 6.0) in
    let cm = Array.make (n * n) 0.0 in
    (cm, a, b)
  in
  let serial_original ~n =
    let cm, a, b = setup n in
    for i = 0 to n - 1 do
      for j = 0 to i do
        for k = 0 to n - 1 do
          cm.((i * n) + j) <- cm.((i * n) + j) +. (a.((k * n) + i) *. b.((k * n) + j))
        done
      done
    done;
    checksum cm
  in
  let serial_collapsed ~n ~recoveries =
    let cm, a, b = setup n in
    let kd = Kernel.find "symm" |> Option.get in
    let rc = Kernel.recovery kd ~n in
    let trip = n * (n + 1) / 2 * n in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let i = ref idx.(0) and j = ref idx.(1) and k = ref idx.(2) in
        for _ = 1 to len do
          cm.((!i * n) + !j) <- cm.((!i * n) + !j) +. (a.((!k * n) + !i) *. b.((!k * n) + !j));
          incr k;
          if !k >= n then begin
            incr j;
            if !j > !i then begin
              incr i;
              j := 0
            end;
            k := 0
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum cm
  in
  Kernel.register
    { name = "symm";
      description = "symmetric-matrix style accumulation with all three loops collapsed (lower prism)";
      family = "tetrahedral";
      collapsed = 3;
      total_loops = 3;
      nest;
      param_map = (fun n _ -> n);
      default_n = 220;
      fig10_n = 150;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }
