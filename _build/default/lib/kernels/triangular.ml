(* Triangular-domain kernels: correlation (upper triangle, named in the
   paper), syrk / syr2k (lower triangle, reconstructed Polybench picks),
   utma (upper triangular matrix add, 5000x5000 in the paper) and ltmp
   (lower triangular matrix product, 4000x4000 in the paper; only the
   two outer loops are collapsible because the innermost k-loop carries
   a dependence and has non-constant bounds). *)

open Shape

let correlation =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
        { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]
  in
  let outer_costs ~n =
    Array.init (max 0 (n - 1)) (fun i -> float_of_int ((n - 1 - i) * n))
  in
  let collapsed_costs ~n =
    Array.make (n * (n - 1) / 2) (float_of_int n)
  in
  let setup n =
    let b = init_mat n (fun r c -> float_of_int (((r * 7) + c) mod 13) /. 3.0) in
    let c = init_mat n (fun r c -> float_of_int ((r - (2 * c)) mod 11) /. 5.0) in
    let a = Array.make (n * n) 0.0 in
    (a, b, c)
  in
  let body n a b c i j =
    let s = ref 0.0 in
    for k = 0 to n - 1 do
      s := !s +. (b.((k * n) + i) *. c.((k * n) + j))
    done;
    a.((i * n) + j) <- a.((i * n) + j) +. !s;
    a.((j * n) + i) <- a.((i * n) + j)
  in
  let serial_original ~n =
    let a, b, c = setup n in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        body n a b c i j
      done
    done;
    checksum a
  in
  let serial_collapsed ~n ~recoveries =
    let a, b, c = setup n in
    let k = Kernel.find "correlation" |> Option.get in
    let rc = Kernel.recovery k ~n in
    let trip = n * (n - 1) / 2 in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let i = ref idx.(0) and j = ref idx.(1) in
        for _ = 1 to len do
          body n a b c !i !j;
          (* hand-inlined §V incrementation, as the generated C does *)
          incr j;
          if !j >= n then begin
            incr i;
            j := !i + 1
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum a
  in
  Kernel.register
    { name = "correlation";
      description = "upper-triangular correlation update (paper Fig. 1), k-loop kept inner";
      family = "triangular";
      collapsed = 2;
      total_loops = 3;
      nest;
      param_map = (fun n _ -> n);
      default_n = 2000;
      fig10_n = 300;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

(* syrk-style symmetric rank-k update on the lower triangle:
   for (i) for (j = 0 .. i) { C[i][j] += sum_k A[i][k]*A[j][k] } *)
let syrk_nest () =
  Trahrhe.Nest.make ~params:[ "N" ]
    [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
      { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 } ]

let make_syrk ~name ~description ~weight =
  let nest = syrk_nest () in
  let outer_costs ~n = Array.init n (fun i -> float_of_int ((i + 1) * weight * n)) in
  let collapsed_costs ~n =
    let total = n * (n + 1) / 2 in
    Array.make total (float_of_int (weight * n))
  in
  let setup n =
    let a = init_mat n (fun r c -> float_of_int (((r * 3) + c) mod 17) /. 7.0) in
    let b = init_mat n (fun r c -> float_of_int ((r + (5 * c)) mod 19) /. 9.0) in
    let cm = Array.make (n * n) 0.0 in
    (cm, a, b)
  in
  let body n cm a b i j =
    let s = ref 0.0 in
    for k = 0 to (weight * n) - 1 do
      let k' = k mod n in
      s := !s +. (a.((i * n) + k') *. b.((j * n) + k'))
    done;
    cm.((i * n) + j) <- cm.((i * n) + j) +. !s
  in
  let serial_original ~n =
    let cm, a, b = setup n in
    for i = 0 to n - 1 do
      for j = 0 to i do
        body n cm a b i j
      done
    done;
    checksum cm
  in
  let serial_collapsed ~n ~recoveries =
    let cm, a, b = setup n in
    let k = Kernel.find name |> Option.get in
    let rc = Kernel.recovery k ~n in
    let trip = n * (n + 1) / 2 in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let i = ref idx.(0) and j = ref idx.(1) in
        for _ = 1 to len do
          body n cm a b !i !j;
          incr j;
          if !j > !i then begin
            incr i;
            j := 0
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum cm
  in
  Kernel.register
    { name;
      description;
      family = "triangular";
      collapsed = 2;
      total_loops = 3;
      nest;
      param_map = (fun n _ -> n);
      default_n = 2000;
      fig10_n = (if weight = 1 then 300 else 240);
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

let syrk =
  make_syrk ~name:"syrk" ~weight:1
    ~description:"symmetric rank-k update on the lower triangle (reconstructed Polybench pick)"

let syr2k =
  make_syrk ~name:"syr2k" ~weight:2
    ~description:"symmetric rank-2k update, twice the inner work of syrk (reconstructed)"

(* utma: sum of two upper triangular matrices (paper: 5000x5000).
   Both loops collapsed; the body is a single add, so recovery overhead
   is comparatively the most visible here. *)
let utma =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let outer_costs ~n = Array.init n (fun i -> float_of_int (n - i)) in
  let collapsed_costs ~n = Array.make (n * (n + 1) / 2) 1.0 in
  let setup n =
    let b = init_mat n (fun r c -> if c >= r then float_of_int ((r + c) mod 23) else 0.0) in
    let c = init_mat n (fun r c -> if c >= r then float_of_int ((r * c) mod 29) else 0.0) in
    let a = Array.make (n * n) 0.0 in
    (a, b, c)
  in
  let serial_original ~n =
    let a, b, c = setup n in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        a.((i * n) + j) <- b.((i * n) + j) +. c.((i * n) + j)
      done
    done;
    checksum a
  in
  let serial_collapsed ~n ~recoveries =
    let a, b, c = setup n in
    let k = Kernel.find "utma" |> Option.get in
    let rc = Kernel.recovery k ~n in
    let trip = n * (n + 1) / 2 in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let i = ref idx.(0) and j = ref idx.(1) in
        for _ = 1 to len do
          a.((!i * n) + !j) <- b.((!i * n) + !j) +. c.((!i * n) + !j);
          incr j;
          if !j >= n then begin
            incr i;
            j := !i
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum a
  in
  Kernel.register
    { name = "utma";
      description = "sum of two upper triangular matrices (paper workload, 5000^2)";
      family = "triangular";
      collapsed = 2;
      total_loops = 2;
      nest;
      param_map = (fun n _ -> n);
      default_n = 3000;
      fig10_n = 1500;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

(* ltmp: product of two lower triangular matrices (paper: 4000x4000).
   a[i][j] = sum_{k=j..i} b[i][k]*c[k][j] for j <= i. The k-loop
   carries the reduction and has non-constant bounds, so only i and j
   are collapsed; the per-(i,j) work (i - j + 1) stays imbalanced even
   after collapsing — the one case where schedule(dynamic) beats the
   collapsed loop in the paper. *)
let ltmp =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 } ]
  in
  let outer_costs ~n =
    (* sum_{j=0..i} (i - j + 1) = (i+1)(i+2)/2 *)
    Array.init n (fun i -> float_of_int ((i + 1) * (i + 2) / 2))
  in
  let collapsed_costs ~n =
    let total = n * (n + 1) / 2 in
    let costs = Array.make total 0.0 in
    let q = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to i do
        costs.(!q) <- float_of_int (i - j + 1);
        incr q
      done
    done;
    costs
  in
  let setup n =
    let b = init_mat n (fun r c -> if c <= r then float_of_int ((r + (2 * c)) mod 13) /. 4.0 else 0.0) in
    let c = init_mat n (fun r c -> if c <= r then float_of_int (((3 * r) + c) mod 11) /. 6.0 else 0.0) in
    let a = Array.make (n * n) 0.0 in
    (a, b, c)
  in
  let body n a b c i j =
    let s = ref 0.0 in
    for k = j to i do
      s := !s +. (b.((i * n) + k) *. c.((k * n) + j))
    done;
    a.((i * n) + j) <- !s
  in
  let serial_original ~n =
    let a, b, c = setup n in
    for i = 0 to n - 1 do
      for j = 0 to i do
        body n a b c i j
      done
    done;
    checksum a
  in
  let serial_collapsed ~n ~recoveries =
    let a, b, c = setup n in
    let k = Kernel.find "ltmp" |> Option.get in
    let rc = Kernel.recovery k ~n in
    let trip = n * (n + 1) / 2 in
    List.iter
      (fun (start, len) ->
        let idx = Trahrhe.Recovery.recover_guarded rc start in
        let i = ref idx.(0) and j = ref idx.(1) in
        for _ = 1 to len do
          body n a b c !i !j;
          incr j;
          if !j > !i then begin
            incr i;
            j := 0
          end
        done)
      (Kernel.chunk_starts ~trip ~recoveries);
    checksum a
  in
  Kernel.register
    { name = "ltmp";
      description = "product of two lower triangular matrices (paper workload, 4000^2); k-loop not collapsible";
      family = "triangular";
      collapsed = 2;
      total_loops = 3;
      nest;
      param_map = (fun n _ -> n);
      default_n = 2000;
      fig10_n = 400;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }
