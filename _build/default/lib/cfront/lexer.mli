(** Tokenizer over a substring of a C source file.

    Operates on a window of the original text so the transformer can
    splice generated code back at exact byte offsets. *)

type t

(** [create source ~pos] starts lexing [source] at byte offset [pos]. *)
val create : string -> pos:int -> t

(** [peek l] is the next token without consuming it. *)
val peek : t -> Token.t

(** [next l] consumes and returns the next token. *)
val next : t -> Token.t

(** [pos l] is the byte offset of the first unconsumed character
    (after [peek], the offset of the peeked token's start). *)
val pos : t -> int

(** [expect l tok] consumes the next token and checks it.
    @raise Failure with a location message on mismatch. *)
val expect : t -> Token.t -> unit
