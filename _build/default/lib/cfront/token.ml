type t =
  | Ident of string
  | Int of int
  | Plus
  | Minus
  | Star
  | Slash
  | LParen
  | RParen
  | LBrace
  | RBrace
  | Semi
  | Comma
  | Assign
  | Lt
  | Le
  | Gt
  | Ge
  | PlusPlus
  | PlusEq
  | Eof

let to_string = function
  | Ident s -> s
  | Int n -> string_of_int n
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | LParen -> "("
  | RParen -> ")"
  | LBrace -> "{"
  | RBrace -> "}"
  | Semi -> ";"
  | Comma -> ","
  | Assign -> "="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | PlusPlus -> "++"
  | PlusEq -> "+="
  | Eof -> "<eof>"
