module A = Polymath.Affine
module Q = Zmath.Rat

type for_header = { var : string; lower : A.t; upper : A.t; stride : int }

(* expr := term (('+'|'-') term)* ; term := factor ('*' factor)* ;
   factor := Int | Ident | '(' expr ')' | '-' factor *)
let rec affine l =
  let t = term l in
  let rec tail acc =
    match Lexer.peek l with
    | Token.Plus ->
      ignore (Lexer.next l);
      tail (A.add acc (term l))
    | Token.Minus ->
      ignore (Lexer.next l);
      tail (A.sub acc (term l))
    | _ -> acc
  in
  tail t

and term l =
  let f = factor l in
  let rec tail acc =
    match Lexer.peek l with
    | Token.Star ->
      ignore (Lexer.next l);
      let g = factor l in
      let prod =
        match (A.is_const acc, A.is_const g) with
        | Some c, _ -> A.scale c g
        | _, Some c -> A.scale c acc
        | None, None -> failwith "Cfront: non-affine product in loop bound"
      in
      tail prod
    | Token.Slash -> failwith "Cfront: division in loop bounds is not supported (non-integer Ehrhart coefficients)"
    | _ -> acc
  in
  tail f

and factor l =
  match Lexer.next l with
  | Token.Int n -> A.of_int n
  | Token.Ident x -> A.var x
  | Token.LParen ->
    let e = affine l in
    Lexer.expect l Token.RParen;
    e
  | Token.Minus -> A.neg (factor l)
  | tok -> failwith ("Cfront: unexpected token in bound: " ^ Token.to_string tok)

let iterator_types = [ "int"; "long"; "unsigned"; "size_t"; "short" ]

let for_header l =
  (match Lexer.next l with
  | Token.Ident "for" -> ()
  | tok -> failwith ("Cfront: expected 'for', found " ^ Token.to_string tok));
  Lexer.expect l Token.LParen;
  (* optional iterator declaration *)
  let first = Lexer.next l in
  let var =
    match first with
    | Token.Ident ty when List.mem ty iterator_types -> (
      match Lexer.next l with
      | Token.Ident v -> v
      | tok -> failwith ("Cfront: expected iterator name, found " ^ Token.to_string tok))
    | Token.Ident v -> v
    | tok -> failwith ("Cfront: expected iterator, found " ^ Token.to_string tok)
  in
  Lexer.expect l Token.Assign;
  let lower = affine l in
  Lexer.expect l Token.Semi;
  (match Lexer.next l with
  | Token.Ident v when v = var -> ()
  | tok -> failwith ("Cfront: condition must test the iterator, found " ^ Token.to_string tok));
  let upper =
    match Lexer.next l with
    | Token.Lt -> affine l
    | Token.Le -> A.add_const Q.one (affine l)
    | tok -> failwith ("Cfront: only < and <= conditions are supported, found " ^ Token.to_string tok)
  in
  Lexer.expect l Token.Semi;
  (* increment: i++ | ++i | i += c (constant positive stride) *)
  let stride =
    match Lexer.next l with
    | Token.Ident v when v = var -> (
      match Lexer.next l with
      | Token.PlusPlus -> 1
      | Token.PlusEq -> (
        match Lexer.next l with
        | Token.Int c when c > 0 -> c
        | _ -> failwith "Cfront: stride must be a positive integer constant")
      | tok -> failwith ("Cfront: unsupported increment " ^ Token.to_string tok))
    | Token.PlusPlus -> (
      match Lexer.next l with
      | Token.Ident v when v = var -> 1
      | _ -> failwith "Cfront: increment must target the iterator")
    | tok -> failwith ("Cfront: unsupported increment " ^ Token.to_string tok)
  in
  Lexer.expect l Token.RParen;
  { var; lower; upper; stride }

let normalize_strides headers =
  (* outermost-in: track substitutions original -> lo + c * surrogate *)
  let q_of = Q.of_int in
  let rec go subs recon acc = function
    | [] -> (List.rev acc, List.rev recon)
    | h :: rest ->
      let lower = List.fold_left (fun a (x, b) -> A.subst x b a) h.lower subs in
      let upper = List.fold_left (fun a (x, b) -> A.subst x b a) h.upper subs in
      if h.stride = 1 then go subs recon ({ h with lower; upper } :: acc) rest
      else begin
        let c = q_of h.stride in
        let extent = A.sub upper lower in
        (* split extent = c * q(x) + d0: variable coefficients must be
           divisible by the stride for the trip count to stay affine *)
        List.iter
          (fun (x, k) ->
            if not (Q.is_integer (Q.div k c)) then
              failwith
                (Printf.sprintf
                   "Cfront: stride %d of %s does not divide the coefficient of %s in the loop \
                    extent"
                   h.stride h.var x))
          (A.terms extent);
        let d0 = A.const_part extent in
        let var_part = A.sub extent (A.const d0) in
        (* ceil((c*q + d0)/c) = q + ceil(d0/c) *)
        let trips =
          A.add_const
            (Q.of_bigint (Q.ceil (Q.div d0 c)))
            (A.scale (Q.inv c) var_part)
        in
        let surrogate = h.var ^ "__u" in
        let recon_expr = A.add lower (A.scale c (A.var surrogate)) in
        go
          ((h.var, recon_expr) :: subs)
          ((h.var, recon_expr) :: recon)
          ({ var = surrogate; lower = A.zero; upper = trips; stride = 1 } :: acc)
          rest
      end
  in
  go [] [] [] headers

let nest_of_headers headers =
  List.iter
    (fun h -> if h.stride <> 1 then failwith "Cfront: normalize_strides must run first")
    headers;
  let loop_vars = List.map (fun h -> h.var) headers in
  let params =
    List.concat_map (fun h -> A.vars h.lower @ A.vars h.upper) headers
    |> List.filter (fun x -> not (List.mem x loop_vars))
    |> List.sort_uniq String.compare
  in
  Trahrhe.Nest.make ~params
    (List.map (fun h -> { Trahrhe.Nest.var = h.var; lower = h.lower; upper = h.upper }) headers)
