type t = {
  src : string;
  mutable cur : int;  (** next unread char *)
  mutable tok_start : int;  (** start offset of the lookahead token *)
  mutable lookahead : Token.t option;
}

let create src ~pos = { src; cur = pos; tok_start = pos; lookahead = None }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws l =
  let n = String.length l.src in
  while l.cur < n && (l.src.[l.cur] = ' ' || l.src.[l.cur] = '\t' || l.src.[l.cur] = '\n' || l.src.[l.cur] = '\r') do
    l.cur <- l.cur + 1
  done;
  (* skip comments *)
  if l.cur + 1 < n && l.src.[l.cur] = '/' && l.src.[l.cur + 1] = '*' then begin
    let close = ref (l.cur + 2) in
    while !close + 1 < n && not (l.src.[!close] = '*' && l.src.[!close + 1] = '/') do incr close done;
    l.cur <- min n (!close + 2);
    skip_ws l
  end
  else if l.cur + 1 < n && l.src.[l.cur] = '/' && l.src.[l.cur + 1] = '/' then begin
    while l.cur < n && l.src.[l.cur] <> '\n' do l.cur <- l.cur + 1 done;
    skip_ws l
  end

let scan l =
  skip_ws l;
  l.tok_start <- l.cur;
  let n = String.length l.src in
  if l.cur >= n then Token.Eof
  else begin
    let c = l.src.[l.cur] in
    let two = if l.cur + 1 < n then String.sub l.src l.cur 2 else "" in
    if is_ident_start c then begin
      let e = ref l.cur in
      while !e < n && is_ident l.src.[!e] do incr e done;
      let s = String.sub l.src l.cur (!e - l.cur) in
      l.cur <- !e;
      Token.Ident s
    end
    else if is_digit c then begin
      let e = ref l.cur in
      while !e < n && is_digit l.src.[!e] do incr e done;
      let s = String.sub l.src l.cur (!e - l.cur) in
      l.cur <- !e;
      Token.Int (int_of_string s)
    end
    else begin
      let tok, len =
        match two with
        | "++" -> (Token.PlusPlus, 2)
        | "+=" -> (Token.PlusEq, 2)
        | "<=" -> (Token.Le, 2)
        | ">=" -> (Token.Ge, 2)
        | _ -> (
          match c with
          | '+' -> (Token.Plus, 1)
          | '-' -> (Token.Minus, 1)
          | '*' -> (Token.Star, 1)
          | '/' -> (Token.Slash, 1)
          | '(' -> (Token.LParen, 1)
          | ')' -> (Token.RParen, 1)
          | '{' -> (Token.LBrace, 1)
          | '}' -> (Token.RBrace, 1)
          | ';' -> (Token.Semi, 1)
          | ',' -> (Token.Comma, 1)
          | '=' -> (Token.Assign, 1)
          | '<' -> (Token.Lt, 1)
          | '>' -> (Token.Gt, 1)
          | c -> failwith (Printf.sprintf "Cfront.Lexer: unexpected character %C at offset %d" c l.cur))
      in
      l.cur <- l.cur + len;
      tok
    end
  end

let peek l =
  match l.lookahead with
  | Some tok -> tok
  | None ->
    let tok = scan l in
    l.lookahead <- Some tok;
    tok

let next l =
  match l.lookahead with
  | Some tok ->
    l.lookahead <- None;
    tok
  | None -> scan l

let pos l = match l.lookahead with Some _ -> l.tok_start | None -> l.cur

let expect l tok =
  let got = next l in
  if got <> tok then
    failwith
      (Printf.sprintf "Cfront: expected %s but found %s near offset %d" (Token.to_string tok)
         (Token.to_string got) l.tok_start)
