type scheme =
  | Naive
  | Per_thread
  | Chunked of int
  | Simd of int

type options = { scheme : scheme; guarded : bool; counter_ty : string }

let default_options = { scheme = Per_thread; guarded = false; counter_ty = "long" }

type region = {
  pragma_start : int;
  body_end : int;
  collapse : int;
  nest : Trahrhe.Nest.t;
  body : string;
  reconstruct : (string * Polymath.Affine.t) list;
      (** strided originals rebuilt from surrogate iterators *)
}

(* --- pragma line scanning --- *)

let line_end src pos =
  (* honor backslash continuations *)
  let n = String.length src in
  let rec go p =
    if p >= n then n
    else if src.[p] = '\n' then
      if p > 0 && src.[p - 1] = '\\' then go (p + 1) else p + 1
    else go (p + 1)
  in
  go pos

let contains_word line word =
  (* word match tolerant of clause syntax *)
  let wl = String.length word and n = String.length line in
  let is_id c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
  let rec go i =
    if i + wl > n then false
    else if String.sub line i wl = word
            && (i = 0 || not (is_id line.[i - 1]))
            && (i + wl = n || not (is_id line.[i + wl]))
    then true
    else go (i + 1)
  in
  go 0

let collapse_arg line =
  let n = String.length line in
  let rec find i =
    if i + 8 > n then None
    else if String.sub line i 8 = "collapse" then begin
      (* parse collapse ( INT ) *)
      let l = Lexer.create line ~pos:(i + 8) in
      match (Lexer.next l, Lexer.next l, Lexer.next l) with
      | Token.LParen, Token.Int k, Token.RParen -> Some k
      | _ -> None
    end
    else find (i + 1)
  in
  find 0

(* find the end of the statement starting at [pos]: a braced block or a
   single ;-terminated statement (nested braces/parens respected,
   strings and char literals skipped) *)
let statement_end src pos =
  let n = String.length src in
  let rec skip_ws p = if p < n && (src.[p] = ' ' || src.[p] = '\t' || src.[p] = '\n' || src.[p] = '\r') then skip_ws (p + 1) else p in
  let start = skip_ws pos in
  if start >= n then failwith "Cfront: missing loop body";
  let rec scan p depth in_braces =
    if p >= n then failwith "Cfront: unterminated loop body"
    else
      match src.[p] with
      | '"' ->
        let rec str q = if q >= n then q else if src.[q] = '\\' then str (q + 2) else if src.[q] = '"' then q + 1 else str (q + 1) in
        scan (str (p + 1)) depth in_braces
      | '\'' ->
        let rec chr q = if q >= n then q else if src.[q] = '\\' then chr (q + 2) else if src.[q] = '\'' then q + 1 else chr (q + 1) in
        scan (chr (p + 1)) depth in_braces
      | '{' -> scan (p + 1) (depth + 1) true
      | '}' ->
        if depth = 1 && in_braces then p + 1 else scan (p + 1) (depth - 1) in_braces
      | ';' when depth = 0 && not in_braces -> p + 1
      | _ -> scan (p + 1) depth in_braces
  in
  (start, scan start 0 false)

let strip_braces s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '{' && s.[String.length s - 1] = '}' then
    String.trim (String.sub s 1 (String.length s - 2))
  else s

let find_regions src =
  let n = String.length src in
  let regions = ref [] in
  let rec scan pos =
    if pos >= n then ()
    else begin
      match String.index_from_opt src pos '#' with
      | None -> ()
      | Some h ->
        let le = line_end src h in
        let line = String.sub src h (le - h) in
        if contains_word line "pragma" && contains_word line "omp" && contains_word line "for"
        then begin
          match collapse_arg line with
          | None -> scan le
          | Some c ->
            let l = Lexer.create src ~pos:le in
            let headers = List.init c (fun _ -> Parser.for_header l) in
            let body_start = Lexer.pos l in
            let _, stmt_end = statement_end src body_start in
            let headers, reconstruct = Parser.normalize_strides headers in
            let nest = Parser.nest_of_headers headers in
            if Trahrhe.Nest.is_rectangular nest && reconstruct = [] then scan stmt_end
            else begin
              regions :=
                { pragma_start = h;
                  body_end = stmt_end;
                  collapse = c;
                  nest;
                  body = strip_braces (String.sub src body_start (stmt_end - body_start));
                  reconstruct }
                :: !regions;
              scan stmt_end
            end
        end
        else scan le
    end
  in
  scan 0;
  List.rev !regions

let generate ~options region =
  let inv = Trahrhe.Inversion.invert_exn region.nest in
  let config =
    { Codegen.Schemes.default_config with
      guarded = options.guarded;
      counter_ty = options.counter_ty;
      (* strided originals are rebuilt inside the loop: thread-private *)
      extra_private = List.map fst region.reconstruct }
  in
  let recon_stmts =
    List.map
      (fun (v, a) ->
        Codegen.C_ast.Assign
          (v, Symx.Cemit.emit_poly_int (Polymath.Affine.to_poly a) ~ty:options.counter_ty))
      region.reconstruct
  in
  let recon_decls =
    List.map
      (fun (v, _) -> Codegen.C_ast.Decl { ty = options.counter_ty; name = v; init = None })
      region.reconstruct
  in
  let body = recon_stmts @ [ Codegen.C_ast.Raw region.body ] in
  let stmts =
    match options.scheme with
    | Naive -> Codegen.Schemes.naive ~config inv ~body
    | Per_thread -> Codegen.Schemes.per_thread ~config inv ~body
    | Chunked chunk -> Codegen.Schemes.chunked ~config ~chunk inv ~body
    | Simd vlength ->
      (* the textual body cannot be re-indexed automatically; wrap it in
         a scalar assignment prelude instead *)
      Codegen.Schemes.simd ~config ~vlength inv ~body_of:(fun subst ->
          List.map
            (fun v -> Codegen.C_ast.Raw (Printf.sprintf "%s %s = %s;" options.counter_ty v (subst v)))
            (Trahrhe.Nest.level_vars region.nest)
          @ [ Codegen.C_ast.Raw region.body ])
  in
  "/* collapsed by nonrect-collapse (trahrhe reproduction) */\n{\n"
  ^ Codegen.C_print.to_string ~indent:1 (recon_decls @ stmts)
  ^ "}\n"

let transform_source ?(options = default_options) src =
  let regions = find_regions src in
  let buf = Buffer.create (String.length src) in
  let pos = ref 0 in
  List.iter
    (fun r ->
      Buffer.add_string buf (String.sub src !pos (r.pragma_start - !pos));
      Buffer.add_string buf (generate ~options r);
      pos := r.body_end)
    regions;
  Buffer.add_string buf (String.sub src !pos (String.length src - !pos));
  (Buffer.contents buf, List.length regions)

let transform_file ?options ~input ~output () =
  let ic = open_in_bin input in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let out, count = transform_source ?options src in
  let oc = open_out_bin output in
  output_string oc out;
  close_out oc;
  count
