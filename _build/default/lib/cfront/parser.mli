(** Recursive-descent parser for the loop-header subset of C. *)

module A = Polymath.Affine

type for_header = {
  var : string;
  lower : A.t;  (** inclusive *)
  upper : A.t;  (** exclusive (normalized from [<] / [<=]) *)
  stride : int;  (** positive; 1 for [i++], [c] for [i += c] *)
}

(** [affine l] parses an affine expression (identifiers, integer
    literals, [+ - *], parentheses; products must have at most one
    non-constant factor).
    @raise Failure on syntax errors or non-affine expressions. *)
val affine : Lexer.t -> A.t

(** [for_header l] parses
    [for (i = lo; i < hi; i += c)] (also [<=], [i++], [++i], and an
    optional [int]/[long]/[size_t] declaration of the iterator).
    @raise Failure on unsupported forms ([>] conditions, non-constant
    or non-positive strides, ...). *)
val for_header : Lexer.t -> for_header

(** [normalize_strides headers] rewrites strided loops onto unit-stride
    surrogate iterators (extension over the paper's unit-stride model):
    a level [for (i = lo; i < up; i += c)] becomes
    [for (i' = 0; i' < ceil((up - lo)/c); i'++)] with the original
    iterator reconstructed as [i = lo + c*i'], and that substitution is
    applied to every inner bound. Returns the normalized headers plus
    the reconstruction assignments [(original, affine over surrogates)]
    in nest order (empty when all strides are 1).
    @raise Failure when a variable coefficient of [up - lo] is not
    divisible by the stride (the trip count would not be affine). *)
val normalize_strides : for_header list -> for_header list * (string * A.t) list

(** [nest_of_headers headers] builds the {!Trahrhe.Nest.t}: iterator
    names come from the headers, every other identifier becomes a size
    parameter. Headers must be unit-stride (apply {!normalize_strides}
    first).
    @raise Invalid_argument when the bounds violate the Fig. 5 model.
    @raise Failure on a non-unit stride. *)
val nest_of_headers : for_header list -> Trahrhe.Nest.t
