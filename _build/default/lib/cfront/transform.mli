(** The source-to-source tool: rewrite C files in which non-rectangular
    nests carry an OpenMP [collapse] clause.

    OpenMP itself rejects [collapse] on non-rectangular loops; like the
    paper's tool, this front-end treats the clause as the user's
    request and replaces the construct with a legally collapsed single
    loop embedding the index recovery. Rectangular nests are left
    untouched (OpenMP handles them natively). *)

type scheme =
  | Naive  (** recovery at every iteration (paper Fig. 3) *)
  | Per_thread  (** once per thread + incrementation (Fig. 4, default) *)
  | Chunked of int  (** once per static chunk (§V) *)
  | Simd of int  (** §VI-A with the given vector length *)

type options = {
  scheme : scheme;
  guarded : bool;  (** exact post-floor adjustment (extension) *)
  counter_ty : string;
}

val default_options : options

type region = {
  pragma_start : int;  (** byte offset of [#pragma] *)
  body_end : int;  (** byte offset one past the construct *)
  collapse : int;
  nest : Trahrhe.Nest.t;  (** after stride normalization *)
  body : string;  (** body statement text, braces stripped *)
  reconstruct : (string * Polymath.Affine.t) list;
      (** original strided iterators rebuilt from surrogate iterators
          (empty for unit-stride nests) *)
}

(** [find_regions source] locates every
    [#pragma omp ... for ... collapse(n)] construct whose [n]
    outermost loops are perfectly nested and non-rectangular, parsing
    them into the nest model.
    @raise Failure on malformed constructs. *)
val find_regions : string -> region list

(** [transform_source ?options source] rewrites every non-rectangular
    collapsed region of [source]; returns the new text and the number
    of transformed constructs. *)
val transform_source : ?options:options -> string -> string * int

(** [transform_file ?options ~input ~output ()] is {!transform_source}
    over files. Returns the number of transformed constructs. *)
val transform_file : ?options:options -> input:string -> output:string -> unit -> int
