lib/cfront/parser.mli: Lexer Polymath Trahrhe
