lib/cfront/transform.ml: Buffer Codegen Lexer List Parser Polymath Printf String Symx Token Trahrhe
