lib/cfront/token.ml:
