lib/cfront/lexer.mli: Token
