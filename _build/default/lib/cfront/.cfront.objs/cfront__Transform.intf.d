lib/cfront/transform.mli: Polymath Trahrhe
