lib/cfront/token.mli:
