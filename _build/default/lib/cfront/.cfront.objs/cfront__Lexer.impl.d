lib/cfront/lexer.ml: Printf String Token
