lib/cfront/parser.ml: Lexer List Polymath Printf String Token Trahrhe Zmath
