(** Tokens of the C-subset recognized in loop headers and pragmas. *)

type t =
  | Ident of string
  | Int of int
  | Plus
  | Minus
  | Star
  | Slash
  | LParen
  | RParen
  | LBrace
  | RBrace
  | Semi
  | Comma
  | Assign  (** [=] *)
  | Lt
  | Le
  | Gt
  | Ge
  | PlusPlus
  | PlusEq
  | Eof

val to_string : t -> string
