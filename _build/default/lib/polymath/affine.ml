module Q = Zmath.Rat
module SMap = Map.Make (String)

type t = { terms : Q.t SMap.t; const : Q.t } (* no zero coefficients *)

let zero = { terms = SMap.empty; const = Q.zero }
let const c = { terms = SMap.empty; const = c }
let of_int n = const (Q.of_int n)
let var x = { terms = SMap.singleton x Q.one; const = Q.zero }

let add_term x c m =
  SMap.update x
    (fun cur ->
      let s = Q.add (Option.value ~default:Q.zero cur) c in
      if Q.is_zero s then None else Some s)
    m

let make terms const =
  { terms = List.fold_left (fun m (x, c) -> add_term x c m) SMap.empty terms; const }

let terms a = SMap.bindings a.terms
let const_part a = a.const
let coeff x a = Option.value ~default:Q.zero (SMap.find_opt x a.terms)

let add a b =
  { terms = SMap.fold add_term b.terms a.terms; const = Q.add a.const b.const }

let neg a = { terms = SMap.map Q.neg a.terms; const = Q.neg a.const }
let sub a b = add a (neg b)

let scale c a =
  if Q.is_zero c then zero
  else { terms = SMap.map (Q.mul c) a.terms; const = Q.mul c a.const }

let add_const c a = { a with const = Q.add a.const c }
let equal a b = SMap.equal Q.equal a.terms b.terms && Q.equal a.const b.const
let is_const a = if SMap.is_empty a.terms then Some a.const else None
let vars a = List.map fst (SMap.bindings a.terms)

let subst x b a =
  match SMap.find_opt x a.terms with
  | None -> a
  | Some c -> add { a with terms = SMap.remove x a.terms } (scale c b)

let eval env a =
  SMap.fold (fun x c acc -> Q.add acc (Q.mul c (env x))) a.terms a.const

let eval_float env a =
  SMap.fold (fun x c acc -> acc +. (Q.to_float c *. env x)) a.terms (Q.to_float a.const)

let to_poly a =
  SMap.fold
    (fun x c acc -> Polynomial.add acc (Polynomial.scale c (Polynomial.var x)))
    a.terms
    (Polynomial.const a.const)

let of_poly p =
  if Polynomial.degree p > 1 then None
  else
    Some
      (List.fold_left
         (fun acc (c, m) ->
           match Monomial.to_list m with
           | [] -> add_const c acc
           | [ (x, 1) ] -> add acc (scale c (var x))
           | _ -> assert false)
         zero (Polynomial.terms p))

let to_string a = Polynomial.to_string (to_poly a)
let pp fmt a = Format.pp_print_string fmt (to_string a)
