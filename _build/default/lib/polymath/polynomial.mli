(** Multivariate polynomials with exact rational coefficients.

    This is the workhorse of the collapser: ranking Ehrhart polynomials,
    trip-count polynomials and the coefficients of the univariate
    equations to invert are all values of this type. Variables are
    named; the representation is a canonical monomial-to-coefficient map
    with no zero coefficients. *)

type t

module Q = Zmath.Rat

val zero : t
val one : t

(** [const c] is the constant polynomial [c]. *)
val const : Q.t -> t

val of_int : int -> t

(** [var x] is the polynomial [x]. *)
val var : string -> t

(** [of_terms l] builds a polynomial from [(coefficient, monomial)]
    pairs (summing duplicates). *)
val of_terms : (Q.t * Monomial.t) list -> t

(** [terms p] is the canonical term list, monomials in decreasing
    lexicographic-degree order, zero coefficients absent. *)
val terms : t -> (Q.t * Monomial.t) list

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Q.t -> t -> t

(** [pow p k] is [p^k] for [k >= 0]. *)
val pow : t -> int -> t

val equal : t -> t -> bool
val is_zero : t -> bool

(** [is_const p] is [Some c] when [p] is the constant [c]. *)
val is_const : t -> Q.t option

(** [coeff p m] is the coefficient of monomial [m] in [p]. *)
val coeff : t -> Monomial.t -> Q.t

(** [vars p] is the sorted list of variables occurring in [p]. *)
val vars : t -> string list

(** [degree p] is the total degree ([-1] for the zero polynomial). *)
val degree : t -> int

(** [degree_in x p] is the degree of [p] seen as univariate in [x]. *)
val degree_in : string -> t -> int

(** [subst x q p] substitutes polynomial [q] for every occurrence of
    variable [x] in [p]. *)
val subst : string -> t -> t -> t

(** [subst_all bindings p] substitutes simultaneously (bindings are
    applied to the original variables of [p], not chained). *)
val subst_all : (string * t) list -> t -> t

(** [as_univariate x p] writes [p] as a univariate polynomial in [x]:
    a list of [(exponent, coefficient-polynomial)] pairs, descending
    exponents, coefficients free of [x], no zero coefficients. *)
val as_univariate : string -> t -> (int * t) list

(** [eval env p] evaluates [p] exactly; [env] must cover {!vars}.
    @raise Not_found when a variable is unbound. *)
val eval : (string -> Q.t) -> t -> Q.t

(** [eval_float env p] evaluates in floating point. *)
val eval_float : (string -> float) -> t -> float

(** [derivative x p] is [dp/dx]. *)
val derivative : string -> t -> t

(** [denominator_lcm p] is the positive LCM of all coefficient
    denominators: [scale (of that) p] has integer coefficients. Used to
    evaluate ranking polynomials in exact integer arithmetic at run
    time. *)
val denominator_lcm : t -> Zmath.Bigint.t

(** [to_string p] is a human-readable form, e.g.
    ["1/2*i^2 + 3/2*i + 1"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
