(** Affine (degree-1) expressions over named variables.

    Loop bounds in the paper's model (Fig. 5) are affine combinations of
    surrounding iterators and size parameters; constraints of the
    iteration polyhedron are affine inequalities. *)

type t

module Q = Zmath.Rat

val zero : t
val const : Q.t -> t
val of_int : int -> t
val var : string -> t

(** [make terms const] builds [sum c_i * x_i + const]. *)
val make : (string * Q.t) list -> Q.t -> t

(** [terms a] is the sorted nonzero [(var, coeff)] list. *)
val terms : t -> (string * Q.t) list

(** [const_part a] is the constant term. *)
val const_part : t -> Q.t

(** [coeff x a] is the coefficient of [x] in [a]. *)
val coeff : string -> t -> Q.t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Q.t -> t -> t
val add_const : Q.t -> t -> t
val equal : t -> t -> bool
val is_const : t -> Q.t option
val vars : t -> string list

(** [subst x b a] substitutes affine [b] for [x] in [a] (stays affine). *)
val subst : string -> t -> t -> t

val eval : (string -> Q.t) -> t -> Q.t
val eval_float : (string -> float) -> t -> float

(** [to_poly a] is the same expression as a {!Polynomial.t}. *)
val to_poly : t -> Polynomial.t

(** [of_poly p] is [Some a] when [p] has degree at most 1. *)
val of_poly : Polynomial.t -> t option

val to_string : t -> string
val pp : Format.formatter -> t -> unit
