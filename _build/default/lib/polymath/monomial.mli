(** Power products of named variables (the keys of a polynomial).

    A monomial is a canonical, variable-sorted list of [(variable,
    exponent)] pairs with strictly positive exponents; the empty list is
    the unit monomial 1. *)

type t

(** The unit monomial (degree 0). *)
val one : t

(** [var x] is the monomial [x^1]. *)
val var : string -> t

(** [of_list l] canonicalizes an arbitrary [(var, exp)] list (merging
    repeats, dropping zero exponents).
    @raise Invalid_argument on a negative exponent. *)
val of_list : (string * int) list -> t

(** [to_list m] is the canonical [(var, exp)] list, variables sorted. *)
val to_list : t -> (string * int) list

val mul : t -> t -> t

(** [pow m k] is [m^k] for [k >= 0]. *)
val pow : t -> int -> t

(** [degree m] is the total degree. *)
val degree : t -> int

(** [degree_in x m] is the exponent of [x] in [m] (0 when absent). *)
val degree_in : string -> t -> int

(** [remove x m] is [m] with every power of [x] removed. *)
val remove : string -> t -> t

(** [vars m] is the sorted list of variables occurring in [m]. *)
val vars : t -> string list

val is_one : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

(** [pp] prints e.g. [i^2*j] ([1] for the unit monomial). *)
val pp : Format.formatter -> t -> unit
