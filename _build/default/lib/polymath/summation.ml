module P = Polynomial
module Q = Zmath.Rat

(* S_k as a polynomial evaluated at an arbitrary polynomial argument:
   S_k(arg) = sum_{(e,c) in faulhaber k} c * arg^e. *)
let power_sum_at k arg =
  List.fold_left
    (fun acc (e, c) -> P.add acc (P.scale c (P.pow arg e)))
    P.zero (Zmath.Faulhaber.power_sum k)

let sum ~var p ~lo ~hi =
  if List.mem var (P.vars lo) || List.mem var (P.vars hi) then
    invalid_arg "Summation.sum: bound mentions the summation variable";
  let lo_minus_1 = P.sub lo P.one in
  List.fold_left
    (fun acc (e, c) ->
      let s = P.sub (power_sum_at e hi) (power_sum_at e lo_minus_1) in
      P.add acc (P.mul c s))
    P.zero (P.as_univariate var p)

let count ~var ~lo ~hi = sum ~var P.one ~lo ~hi
