module Q = Zmath.Rat
module MMap = Map.Make (Monomial)

type t = Q.t MMap.t (* no zero coefficients *)

let zero = MMap.empty
let const c = if Q.is_zero c then zero else MMap.singleton Monomial.one c
let one = const Q.one
let of_int n = const (Q.of_int n)
let var x = MMap.singleton (Monomial.var x) Q.one

let add_term m c p =
  if Q.is_zero c then p
  else
    MMap.update m
      (fun cur ->
        let s = Q.add (Option.value ~default:Q.zero cur) c in
        if Q.is_zero s then None else Some s)
      p

let of_terms l = List.fold_left (fun p (c, m) -> add_term m c p) zero l

let terms p =
  MMap.bindings p
  |> List.map (fun (m, c) -> (c, m))
  |> List.sort (fun (_, m1) (_, m2) ->
         let d = compare (Monomial.degree m2) (Monomial.degree m1) in
         if d <> 0 then d else Monomial.compare m1 m2)

let add p q = MMap.fold (fun m c acc -> add_term m c acc) q p
let neg p = MMap.map Q.neg p
let sub p q = add p (neg q)
let scale c p = if Q.is_zero c then zero else MMap.map (Q.mul c) p

let mul p q =
  MMap.fold
    (fun mp cp acc ->
      MMap.fold (fun mq cq acc -> add_term (Monomial.mul mp mq) (Q.mul cp cq) acc) q acc)
    p zero

let pow p k =
  if k < 0 then invalid_arg "Polynomial.pow";
  let rec go acc b k = if k = 0 then acc else go (if k land 1 = 1 then mul acc b else acc) (mul b b) (k lsr 1) in
  go one p k

let equal p q = MMap.equal Q.equal p q
let is_zero p = MMap.is_empty p

let is_const p =
  if is_zero p then Some Q.zero
  else
    match MMap.bindings p with
    | [ (m, c) ] when Monomial.is_one m -> Some c
    | _ -> None

let coeff p m = Option.value ~default:Q.zero (MMap.find_opt m p)

let vars p =
  MMap.fold (fun m _ acc -> List.fold_left (fun acc x -> x :: acc) acc (Monomial.vars m)) p []
  |> List.sort_uniq String.compare

let degree p = MMap.fold (fun m _ acc -> max acc (Monomial.degree m)) p (-1)
let degree_in x p = MMap.fold (fun m _ acc -> max acc (Monomial.degree_in x m)) p 0

let as_univariate x p =
  let tbl = Hashtbl.create 8 in
  MMap.iter
    (fun m c ->
      let e = Monomial.degree_in x m in
      let rest = Monomial.remove x m in
      let cur = Option.value ~default:zero (Hashtbl.find_opt tbl e) in
      Hashtbl.replace tbl e (add_term rest c cur))
    p;
  Hashtbl.fold (fun e q acc -> if is_zero q then acc else (e, q) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let subst x q p =
  List.fold_left
    (fun acc (e, cpoly) -> add acc (mul cpoly (pow q e)))
    zero (as_univariate x p)

let subst_all bindings p =
  (* simultaneous: rename target variables to fresh names first so a
     binding image mentioning another bound variable is not re-bound *)
  let fresh x = "%tmp%" ^ x in
  let renamed = List.fold_left (fun acc (x, _) -> subst x (var (fresh x)) acc) p bindings in
  List.fold_left (fun acc (x, q) -> subst (fresh x) q acc) renamed bindings

let eval env p =
  MMap.fold
    (fun m c acc ->
      let v =
        List.fold_left
          (fun v (x, e) -> Q.mul v (Q.pow (env x) e))
          c (Monomial.to_list m)
      in
      Q.add acc v)
    p Q.zero

let eval_float env p =
  MMap.fold
    (fun m c acc ->
      let v =
        List.fold_left
          (fun v (x, e) -> v *. (env x ** float_of_int e))
          (Q.to_float c) (Monomial.to_list m)
      in
      acc +. v)
    p 0.0

let derivative x p =
  MMap.fold
    (fun m c acc ->
      let e = Monomial.degree_in x m in
      if e = 0 then acc
      else begin
        let m' = Monomial.mul (Monomial.remove x m) (Monomial.pow (Monomial.var x) (e - 1)) in
        add_term m' (Q.mul c (Q.of_int e)) acc
      end)
    p zero

let denominator_lcm p =
  let module B = Zmath.Bigint in
  MMap.fold
    (fun _ c acc ->
      let d = Q.den c in
      let g = B.gcd acc d in
      fst (B.divmod (B.mul acc d) g))
    p B.one

let to_string p =
  if is_zero p then "0"
  else begin
    let buf = Buffer.create 64 in
    let first = ref true in
    List.iter
      (fun (c, m) ->
        let neg_p = Q.sign c < 0 in
        let c_abs = Q.abs c in
        if !first then begin
          if neg_p then Buffer.add_string buf "-";
          first := false
        end
        else Buffer.add_string buf (if neg_p then " - " else " + ");
        let unit_coeff = Q.equal c_abs Q.one in
        if Monomial.is_one m then Buffer.add_string buf (Q.to_string c_abs)
        else begin
          if not unit_coeff then begin
            Buffer.add_string buf (Q.to_string c_abs);
            Buffer.add_string buf "*"
          end;
          Buffer.add_string buf (Format.asprintf "%a" Monomial.pp m)
        end)
      (terms p);
    Buffer.contents buf
  end

let pp fmt p = Format.pp_print_string fmt (to_string p)
