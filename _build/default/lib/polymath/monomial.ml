type t = (string * int) list (* sorted by variable, exponents > 0 *)

let one = []
let var x = [ (x, 1) ]

let of_list l =
  List.iter (fun (_, e) -> if e < 0 then invalid_arg "Monomial.of_list: negative exponent") l;
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (x, e) -> Hashtbl.replace tbl x (e + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
    l;
  Hashtbl.fold (fun x e acc -> if e = 0 then acc else (x, e) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_list m = m

let mul a b =
  let rec go a b =
    match (a, b) with
    | [], m | m, [] -> m
    | (xa, ea) :: ta, (xb, eb) :: tb ->
      let c = String.compare xa xb in
      if c < 0 then (xa, ea) :: go ta b
      else if c > 0 then (xb, eb) :: go a tb
      else (xa, ea + eb) :: go ta tb
  in
  go a b

let pow m k =
  if k < 0 then invalid_arg "Monomial.pow";
  if k = 0 then one else List.map (fun (x, e) -> (x, e * k)) m

let degree m = List.fold_left (fun acc (_, e) -> acc + e) 0 m
let degree_in x m = Option.value ~default:0 (List.assoc_opt x m)
let remove x m = List.filter (fun (y, _) -> y <> x) m
let vars m = List.map fst m
let is_one m = m = []
let compare = Stdlib.compare
let equal a b = a = b

let pp fmt m =
  if is_one m then Format.pp_print_string fmt "1"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
      (fun fmt (x, e) ->
        if e = 1 then Format.pp_print_string fmt x else Format.fprintf fmt "%s^%d" x e)
      fmt m
