(** Exact symbolic summation of polynomials over parametric ranges.

    [sum ~var p ~lo ~hi] is the polynomial identically equal to
    [sum_{var = lo}^{hi} p] whenever [hi >= lo - 1] (the empty range
    [hi = lo - 1] sums to zero, as required when counting iterations of
    loops that may execute zero times). Outside that validity region the
    returned polynomial extrapolates Faulhaber's formula and is {e not}
    a count.

    This is the replacement for ISL/barvinok counting in this repo: for
    the paper's loop model the iteration counts and ranking polynomials
    are obtained by summing 1 (resp. inner counts) over each loop range,
    innermost first. *)

(** [sum ~var p ~lo ~hi] symbolically sums [p] over integer values
    [lo <= var <= hi]. [lo] and [hi] may be arbitrary polynomials in
    other variables (and may mention [var] only if you really mean a
    range whose bound moves with the summation variable — they are
    composed as given, so normally they must not mention [var]).
    @raise Invalid_argument if [lo] or [hi] mentions [var]. *)
val sum :
  var:string -> Polynomial.t -> lo:Polynomial.t -> hi:Polynomial.t -> Polynomial.t

(** [count ~var ~lo ~hi] is [sum ~var 1 ~lo ~hi = hi - lo + 1]. *)
val count : var:string -> lo:Polynomial.t -> hi:Polynomial.t -> Polynomial.t
