lib/polymath/monomial.ml: Format Hashtbl List Option Stdlib String
