lib/polymath/monomial.mli: Format
