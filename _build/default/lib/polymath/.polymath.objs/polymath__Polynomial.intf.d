lib/polymath/polynomial.mli: Format Monomial Zmath
