lib/polymath/summation.mli: Polynomial
