lib/polymath/summation.ml: List Polynomial Zmath
