lib/polymath/polynomial.ml: Buffer Format Hashtbl List Map Monomial Option String Zmath
