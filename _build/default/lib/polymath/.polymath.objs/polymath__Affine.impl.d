lib/polymath/affine.ml: Format List Map Monomial Option Polynomial String Zmath
