lib/polymath/affine.mli: Format Polynomial Zmath
