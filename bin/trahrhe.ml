(* nonrect-collapse command-line tool (reproduction of the paper's
   trahrhe-style utility): collapse non-rectangular OpenMP loop nests
   in C sources, inspect ranking polynomials, validate recoveries, and
   simulate schedules. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let nest_of_input ~file ~kernel =
  match (file, kernel) with
  | Some path, None -> (
    match Cfront.Transform.find_regions (read_file path) with
    | [] -> Error "no non-rectangular collapse(...) construct found in file"
    | r :: _ -> Ok r.Cfront.Transform.nest)
  | None, Some name -> (
    match Kernels.Registry.find name with
    | Some k -> Ok k.Kernels.Kernel.nest
    | None ->
      Error
        (Printf.sprintf "unknown kernel %S (try: %s)" name
           (String.concat ", " Kernels.Registry.names)))
  | _ -> Error "give exactly one of FILE or --kernel NAME"

let mode_name = function Symx.Cemit.Real -> "real" | Symx.Cemit.Complex -> "complex"

(* per-level recovery kinds for the stderr accounting: which levels run
   radical closed forms and which run the certified numeric search,
   with the isolator's enclosure refinement counts on a mid-range probe *)
let report_recovery_kinds (inv : Trahrhe.Inversion.t) rc =
  let trip = Trahrhe.Recovery.trip_count rc in
  if trip > 0 then begin
    let pc = 1 + (trip / 2) in
    let idx = Trahrhe.Recovery.recover_guarded rc pc in
    let parts =
      Array.to_list
        (Array.mapi
           (fun k r ->
             match r with
             | Trahrhe.Inversion.Root { var; mode; _ } ->
               Printf.sprintf "%s=closed(%s)" var (mode_name mode)
             | Trahrhe.Inversion.Last { var; _ } -> Printf.sprintf "%s=exact" var
             | Trahrhe.Inversion.Numeric { var; _ } ->
               let detail =
                 match Trahrhe.Recovery.isolate_level rc idx ~pc ~level:k with
                 | Some (Ok enc) ->
                   Printf.sprintf "%d newton + %d bisect steps%s"
                     enc.Rootsolve.Isolate.newton_steps enc.Rootsolve.Isolate.bisect_steps
                     (if enc.Rootsolve.Isolate.exact then ", exact root" else "")
                 | Some (Error e) -> Rootsolve.Isolate.error_to_string e
                 | None -> "overflow-guarded bigint search"
               in
               Printf.sprintf "%s=numeric(%s)" var detail)
           inv.Trahrhe.Inversion.recoveries)
    in
    Printf.eprintf "  recovery: %s\n%!" (String.concat "  " parts)
  end;
  if Obsv.Control.enabled () then
    Printf.eprintf "  inversion counters: numeric=%d closed_form=%d\n%!"
      (Trahrhe.Recovery.numeric_recoveries ())
      (Trahrhe.Recovery.closed_form_recoveries ())

(* ---- observability plumbing (--trace / --stats) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"OUT.json"
        ~doc:"Write a Chrome trace_event JSON of the run to $(docv) (load in chrome://tracing).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print span timings and per-worker counters after the run.")

(* run [f] with the obsv layer on when --trace/--stats ask for it;
   write/print the artifacts afterwards, also when [f] fails *)
let with_obsv ~trace ~stats f =
  let want = trace <> None || stats in
  if want then begin
    Obsv.Control.set_enabled true;
    Obsv.Trace.clear ();
    Ompsim.Stats.reset ()
  end;
  Fun.protect f ~finally:(fun () ->
      if want then begin
        (match trace with
        | Some path ->
          Ompsim.Stats.emit_trace_counters ();
          Obsv.Trace.write path;
          Printf.eprintf "trace written to %s (%d events)\n" path (Obsv.Trace.event_count ())
        | None -> ());
        if stats then print_string (Ompsim.Stats.summary ());
        Obsv.Control.set_enabled false
      end)

(* ---- info ---- *)

let info_run file kernel =
  match nest_of_input ~file ~kernel with
  | Error e ->
    prerr_endline e;
    1
  | Ok nest ->
    Format.printf "nest:@\n%a@\n" Trahrhe.Nest.pp nest;
    Format.printf "parameters: %s@\n" (String.concat ", " nest.Trahrhe.Nest.params);
    Format.printf "max dependence degree: %d@\n" (Trahrhe.Nest.max_dependence_degree nest);
    let r = Trahrhe.Ranking.ranking nest in
    Format.printf "ranking polynomial: %s@\n" (Polymath.Polynomial.to_string r);
    Format.printf "trip count: %s@\n"
      (Polymath.Polynomial.to_string (Trahrhe.Ranking.trip_count nest));
    (match Trahrhe.Inversion.invert nest with
    | Error e ->
      Format.printf "inversion: FAILED — %s@\n" (Trahrhe.Inversion.error_to_string e);
      1
    | Ok inv ->
      Array.iter
        (function
          | Trahrhe.Inversion.Root { var; expr; mode } ->
            Format.printf "%s = floor(%s)   [%s]@\n" var (Symx.Expr.to_string expr)
              (mode_name mode)
          | Trahrhe.Inversion.Last { var; poly } ->
            Format.printf "%s = %s   [exact]@\n" var (Polymath.Polynomial.to_string poly)
          | Trahrhe.Inversion.Numeric { var; r_sub_index } ->
            Format.printf
              "%s = numeric(r_sub_%d)   [certified root isolation: no radical closed form at \
               this degree]@\n"
              var r_sub_index)
        inv.Trahrhe.Inversion.recoveries;
      0)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file to analyze.")

let kernel_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "kernel"; "k" ] ~docv:"NAME" ~doc:"Use a built-in benchmark kernel instead of a file.")

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Print the ranking polynomial, trip count and recovery closed forms.")
    Term.(const info_run $ file_arg $ kernel_arg)

(* ---- collapse ---- *)

let scheme_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "naive" ] -> Ok Cfront.Transform.Naive
    | [ "per-thread" ] -> Ok Cfront.Transform.Per_thread
    | [ "chunked"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Cfront.Transform.Chunked n)
      | _ -> Error (`Msg "chunked:N needs a positive integer"))
    | [ "simd"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Cfront.Transform.Simd n)
      | _ -> Error (`Msg "simd:N needs a positive integer"))
    | _ -> Error (`Msg "scheme must be naive | per-thread | chunked:N | simd:N")
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | Cfront.Transform.Naive -> "naive"
      | Cfront.Transform.Per_thread -> "per-thread"
      | Cfront.Transform.Chunked n -> Printf.sprintf "chunked:%d" n
      | Cfront.Transform.Simd n -> Printf.sprintf "simd:%d" n)
  in
  Arg.conv (parse, print)

let collapse_run input output scheme guarded =
  let options = { Cfront.Transform.default_options with scheme; guarded } in
  try
    let src = read_file input in
    let out, count = Cfront.Transform.transform_source ~options src in
    (match output with
    | Some path ->
      let oc = open_out_bin path in
      output_string oc out;
      close_out oc
    | None -> print_string out);
    Printf.eprintf "%d construct(s) collapsed\n" count;
    if count = 0 then 1 else 0
  with Failure e ->
    prerr_endline e;
    1

let collapse_cmd =
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input C source.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file (stdout when absent).")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Cfront.Transform.Per_thread
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"naive | per-thread | chunked:N | simd:N.")
  in
  let guarded =
    Arg.(
      value & flag
      & info [ "guarded" ]
          ~doc:"Add exact integer adjustment after each floored root (float-rounding immune).")
  in
  Cmd.v
    (Cmd.info "collapse"
       ~doc:"Rewrite non-rectangular OpenMP collapse(...) constructs into collapsed loops.")
    Term.(const collapse_run $ input $ output $ scheme $ guarded)

(* ---- validate ---- *)

let validate_run file kernel size trace stats =
  with_obsv ~trace ~stats @@ fun () ->
  match nest_of_input ~file ~kernel with
  | Error e ->
    prerr_endline e;
    1
  | Ok nest -> (
    match Trahrhe.Inversion.invert nest with
    | Error e ->
      Printf.eprintf "inversion failed: %s\n" (Trahrhe.Inversion.error_to_string e);
      1
    | Ok inv ->
      let param =
        match (kernel, Option.bind kernel Kernels.Registry.find) with
        | _, Some k -> Kernels.Kernel.param_of k ~n:size
        | _ -> fun _ -> size
      in
      let report = Trahrhe.Validate.check inv ~param in
      Format.printf "%a@\n" Trahrhe.Validate.pp report;
      if Trahrhe.Validate.all_ok report then 0
      else if Trahrhe.Validate.raw_floor_ok report then begin
        Format.printf
          "note: raw floating floor missed %d/%d iterations (complex cpow rounding); guarded and \
           binary-search recoveries are exact@\n"
          (report.Trahrhe.Validate.iterations - report.Trahrhe.Validate.closed_form_ok)
          report.Trahrhe.Validate.iterations;
        0
      end
      else 1)

let validate_cmd =
  let size =
    Arg.(value & opt int 30 & info [ "size"; "n" ] ~docv:"N" ~doc:"Parameter value to validate at.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Exhaustively check ranking bijectivity and all recovery strategies at a given size.")
    Term.(const validate_run $ file_arg $ kernel_arg $ size $ trace_arg $ stats_arg)

(* ---- simulate ---- *)

let simulate_run kernel size threads trace stats =
  with_obsv ~trace ~stats @@ fun () ->
  match Option.to_result ~none:"--kernel is required" kernel |> fun k -> Result.bind k (fun name ->
      Option.to_result ~none:("unknown kernel " ^ name) (Kernels.Registry.find name))
  with
  | Error e ->
    prerr_endline e;
    1
  | Ok k ->
    let n = match size with Some n -> n | None -> k.Kernels.Kernel.default_n in
    let ov =
      { Ompsim.Sim.fork_join = Ompsim.Calibrate.default_fork_join;
        dispatch = Ompsim.Calibrate.default_dispatch;
        chunk_start = 0.0;
        per_iter = 0.0 }
    in
    let coll_ov =
      { ov with
        chunk_start = Ompsim.Calibrate.default_recovery;
        per_iter = Ompsim.Calibrate.default_increment }
    in
    let outer = k.Kernels.Kernel.outer_costs ~n in
    let coll = k.Kernels.Kernel.collapsed_costs ~n in
    let stat = Ompsim.Sim.run ~costs:outer ~schedule:Ompsim.Schedule.Static ~nthreads:threads ~overheads:ov in
    let dyn = Ompsim.Sim.run ~costs:outer ~schedule:(Ompsim.Schedule.Dynamic 1) ~nthreads:threads ~overheads:ov in
    let colr = Ompsim.Sim.run ~costs:coll ~schedule:Ompsim.Schedule.Static ~nthreads:threads ~overheads:coll_ov in
    Printf.printf "kernel %s, n=%d, %d threads (work units)\n" k.Kernels.Kernel.name n threads;
    Printf.printf "  original static   : %.3e (imbalance %.2f)\n" stat.Ompsim.Sim.makespan stat.Ompsim.Sim.imbalance;
    Printf.printf "  original dynamic  : %.3e (imbalance %.2f, %d dispatches)\n" dyn.Ompsim.Sim.makespan
      dyn.Ompsim.Sim.imbalance dyn.Ompsim.Sim.chunks_dispatched;
    Printf.printf "  collapsed static  : %.3e (imbalance %.2f)\n" colr.Ompsim.Sim.makespan colr.Ompsim.Sim.imbalance;
    Printf.printf "  gain vs static    : %.1f%%\n"
      (100.0 *. Ompsim.Sim.gain ~baseline:stat.Ompsim.Sim.makespan ~improved:colr.Ompsim.Sim.makespan);
    Printf.printf "  gain vs dynamic   : %.1f%%\n"
      (100.0 *. Ompsim.Sim.gain ~baseline:dyn.Ompsim.Sim.makespan ~improved:colr.Ompsim.Sim.makespan);
    0

let simulate_cmd =
  let size =
    Arg.(value & opt (some int) None & info [ "size"; "n" ] ~docv:"N" ~doc:"Problem size (kernel default when absent).")
  in
  let threads = Arg.(value & opt int 12 & info [ "threads"; "t" ] ~docv:"T" ~doc:"Thread count.") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate OpenMP schedules for a benchmark kernel (Figure 9 style).")
    Term.(const simulate_run $ kernel_arg $ size $ threads $ trace_arg $ stats_arg)

(* ---- exec ---- *)

let schedule_conv =
  let parse s = Ompsim.Schedule.of_string s |> Result.map_error (fun e -> `Msg e) in
  let print fmt s = Format.pp_print_string fmt (Ompsim.Schedule.to_string s) in
  Arg.conv (parse, print)

(* order-independent checksum of an iteration tuple, so concurrent
   chunk execution sums to the same value as the serial reference *)
let iter_hash idx =
  let h = ref 0 in
  Array.iter (fun v -> h := (!h * 1000003) + v) idx;
  !h

let exec_run kernel size threads schedule lanes repeat native reduce faults retries deadline_ms trace stats =
  with_obsv ~trace ~stats @@ fun () ->
  match
    Option.to_result ~none:"--kernel is required" kernel |> fun k ->
    Result.bind k (fun name ->
        Option.to_result ~none:("unknown kernel " ^ name) (Kernels.Registry.find name))
  with
  | Error e ->
    prerr_endline e;
    1
  | Ok k -> (
    let n = match size with Some n -> n | None -> k.Kernels.Kernel.default_n in
    if lanes <= 0 then begin
      prerr_endline "--lanes needs a positive integer";
      exit 1
    end;
    if repeat <= 0 then begin
      prerr_endline "--repeat needs a positive integer";
      exit 1
    end;
    let fault_cfg =
      match faults with
      | Some spec -> (
        match Ompsim.Fault.of_spec spec with
        | Ok cfg -> Some cfg
        | Error e ->
          prerr_endline e;
          exit 1)
      | None -> Ompsim.Fault.get ()
    in
    (* any fault-tolerance knob routes execution through the
       supervised region; otherwise the plain unsupervised path runs *)
    let resilient = fault_cfg <> None || retries > 0 || deadline_ms <> None in
    (* a reduction request rewrites the nest's clause BEFORE the cache
       lookup so the clause participates in content addressing: the
       value polynomial is the kernel's declared clause when it has
       one, the canonical default otherwise *)
    let nest =
      match reduce with
      | None -> k.Kernels.Kernel.nest
      | Some op ->
        let base = k.Kernels.Kernel.nest in
        let value =
          match base.Trahrhe.Nest.reduce with
          | Some r -> r.Trahrhe.Nest.value
          | None -> Trahrhe.Nest.default_reduce_value base
        in
        Trahrhe.Nest.with_reduce base (Some { Trahrhe.Nest.op; value })
    in
    (* compile once through the plan cache (warm OMPSIM_PLAN_CACHE dirs
       skip the symbolic pipeline entirely); the recovery and the
       serial reference are then reused across every --repeat run *)
    match Service.Cache.find_or_compile (Service.Cache.default ()) nest with
    | Error e ->
      Printf.eprintf "inversion failed: %s\n" e;
      1
    | Ok (plan, renaming) ->
      let param =
        Service.Fingerprint.canonical_param renaming (Kernels.Kernel.param_of k ~n)
      in
      let rc, native_reason =
        if native then Service.Native.recovery_explain (Service.Native.default ()) plan ~param
        else (Service.Plan.recovery plan ~param, None)
      in
      let trip = Trahrhe.Recovery.trip_count rc in
      match reduce with
      | Some op -> (
        (* parallel reduction over the collapsed range: per-worker
           partials, deterministic combine tree, checked exactly
           against the serial fold *)
        let show = function
          | `Int v -> string_of_int v
          | `Rat q -> Zmath.Rat.to_string q
        in
        let values_equal a b =
          match (a, b) with
          | `Int x, `Int y -> x = y
          | `Rat x, `Rat y -> Zmath.Rat.compare x y = 0
          | _ -> false
        in
        let cnest = plan.Service.Plan.inversion.Trahrhe.Inversion.nest in
        let serial =
          match op with
          | Trahrhe.Nest.Sum ->
            let acc = ref 0 in
            Trahrhe.Nest.iterate cnest ~param (fun idx ->
                acc := !acc + Trahrhe.Recovery.reduce_value_int rc idx);
            `Int !acc
          | _ -> (
            let acc = ref None in
            Trahrhe.Nest.iterate cnest ~param (fun idx ->
                let v = Trahrhe.Recovery.reduce_value_rat rc idx in
                acc := Some (match !acc with None -> v | Some a -> Trahrhe.Nest.op_apply op a v));
            match (!acc, Trahrhe.Nest.op_neutral op) with
            | Some q, _ -> `Rat q
            | None, Some q -> `Rat q
            | None, None ->
              prerr_endline "min/max reduction over an empty iteration space";
              exit 1)
        in
        let run_region combine body =
          if resilient then
            Ompsim.Par.reduce_resilient ~retries ?deadline_ms ~faults:fault_cfg ~nthreads:threads
              ~schedule ~n:trip ~combine body
            |> Result.map_error Ompsim.Par.describe_error
          else Ok (Ompsim.Par.reduce_chunks ~nthreads:threads ~schedule ~n:trip ~combine body)
        in
        let run_once () =
          match op with
          | Trahrhe.Nest.Sum ->
            run_region ( + ) (fun ~thread:_ ~start ~len ->
                Trahrhe.Recovery.walk_reduce_sum rc ~pc:(start + 1) ~len)
            |> Result.map (fun o -> `Int (Option.value ~default:0 o))
          | _ ->
            run_region (Trahrhe.Nest.op_apply op) (fun ~thread:_ ~start ~len ->
                Trahrhe.Recovery.walk_reduce_rat rc ~pc:(start + 1) ~len)
            |> Result.map (fun o ->
                   match (o, Trahrhe.Nest.op_neutral op) with
                   | Some q, _ -> `Rat q
                   | None, Some q -> `Rat q
                   | None, None -> `Rat Zmath.Rat.zero)
        in
        let t0 = Unix.gettimeofday () in
        let rec run_repeats r =
          if r > repeat then Ok ()
          else begin
            match run_once () with
            | Error msg -> Error msg
            | Ok v when not (values_equal v serial) ->
              Error
                (Printf.sprintf "REDUCTION MISMATCH on run %d/%d: parallel %s vs serial %s" r
                   repeat (show v) (show serial))
            | Ok _ -> run_repeats (r + 1)
          end
        in
        let result = run_repeats 1 in
        let elapsed = Unix.gettimeofday () -. t0 in
        match result with
        | Error msg ->
          print_endline msg;
          1
        | Ok () ->
          Printf.printf
            "kernel %s, n=%d, %d threads, schedule(%s), reduce(%s): %d collapsed iterations%s in \
             %.4fs\n"
            k.Kernels.Kernel.name n threads
            (Ompsim.Schedule.to_string schedule)
            (Trahrhe.Nest.op_to_string op) trip
            (if repeat > 1 then Printf.sprintf " x%d runs" repeat else "")
            elapsed;
          if native then
            Printf.eprintf "  native backend: %s\n%!"
              (match native_reason with
              | None -> "engaged"
              | Some reason -> Printf.sprintf "interpreted fallback (%s)" reason);
          report_recovery_kinds plan.Service.Plan.inversion rc;
          if Obsv.Control.enabled () then begin
            Printf.printf "  reduce: %d partials, %d combines\n"
              (Obsv.Metrics.total Ompsim.Stats.reduce_partials)
              (Obsv.Metrics.total Ompsim.Stats.reduce_combines);
            match schedule with
            | Ompsim.Schedule.Dnc _ ->
              Printf.printf "  dnc: %d splits, %d grain chunks\n"
                (Obsv.Metrics.total Ompsim.Stats.dnc_splits)
                (Obsv.Metrics.total Ompsim.Stats.dnc_grain_chunks)
            | _ -> ()
          end;
          Printf.printf "reduction ok (%s)\n" (show serial);
          0)
      | None ->
      (* padded per-worker partial checksums: one writer per slot *)
      let stride = 16 in
      let partial = Array.make (threads * stride) 0 in
      let body ~thread ~start ~len =
        let cell = thread * stride in
        if native then
          (* one call per chunk: the specialized object's walk_hash
             when the backend engaged, the interpreted fold otherwise *)
          partial.(cell) <- partial.(cell) + Trahrhe.Recovery.walk_hash rc ~pc:(start + 1) ~len
        else if lanes > 1 then
          (* §VI-A batched body: one hash per lane of each lockstep block *)
          Trahrhe.Recovery.walk_lanes rc ~pc:(start + 1) ~len ~vlength:lanes
            (fun ~base:_ ~count buf ->
              let d = Array.length buf in
              for l = 0 to count - 1 do
                let h = ref 0 in
                for k = 0 to d - 1 do
                  h := (!h * 1000003) + buf.(k).(l)
                done;
                partial.(cell) <- partial.(cell) + !h
              done)
        else
          Trahrhe.Recovery.walk rc ~pc:(start + 1) ~len (fun idx ->
              partial.(cell) <- partial.(cell) + iter_hash idx)
      in
      (* serial reference, once: the plan's canonical nest enumerates
         the same integer tuples as the kernel's own *)
      let serial_sum = ref 0 in
      Trahrhe.Nest.iterate plan.Service.Plan.inversion.Trahrhe.Inversion.nest ~param (fun idx ->
          serial_sum := !serial_sum + iter_hash idx);
      let run_times = Array.make repeat 0.0 in
      let t0 = Unix.gettimeofday () in
      let rec run_repeats r =
        if r > repeat then Ok ()
        else begin
          Array.fill partial 0 (Array.length partial) 0;
          let rt0 = Unix.gettimeofday () in
          let outcome =
            if resilient then
              Ompsim.Par.run_resilient ~retries ?deadline_ms ~faults:fault_cfg ~nthreads:threads
                ~schedule ~n:trip body
            else begin
              Ompsim.Par.parallel_for_chunks ~nthreads:threads ~schedule ~n:trip body;
              Ok ()
            end
          in
          run_times.(r - 1) <- Unix.gettimeofday () -. rt0;
          match outcome with
          | Error err -> Error (Ompsim.Par.describe_error err)
          | Ok () ->
            let parallel_sum = ref 0 in
            for t = 0 to threads - 1 do
              parallel_sum := !parallel_sum + partial.(t * stride)
            done;
            if !parallel_sum <> !serial_sum then
              Error
                (Printf.sprintf "CHECKSUM MISMATCH on run %d/%d: parallel %d vs serial %d" r
                   repeat !parallel_sum !serial_sum)
            else run_repeats (r + 1)
        end
      in
      let result = run_repeats 1 in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match result with
      | Error msg ->
        print_endline msg;
        1
      | Ok () ->
        Printf.printf
          "kernel %s, n=%d, %d threads, schedule(%s)%s: %d collapsed iterations%s in %.4fs\n"
          k.Kernels.Kernel.name n threads
          (Ompsim.Schedule.to_string schedule)
          (if lanes > 1 then Printf.sprintf ", %d lanes" lanes else "")
          trip
          (if repeat > 1 then Printf.sprintf " x%d runs" repeat else "")
          elapsed;
        if native then
          Printf.eprintf "  native backend: %s\n%!"
            (match native_reason with
            | None -> "engaged"
            | Some reason -> Printf.sprintf "interpreted fallback (%s)" reason);
        report_recovery_kinds plan.Service.Plan.inversion rc;
        if repeat > 1 then begin
          (* per-run wall times, not just the aggregate: min/median make
             warm-up effects and scheduling noise visible *)
          Array.iteri
            (fun i t -> Printf.eprintf "  run %2d/%d: %.4fs\n" (i + 1) repeat t)
            run_times;
          let sorted = Array.copy run_times in
          Array.sort compare sorted;
          let median =
            if repeat mod 2 = 1 then sorted.(repeat / 2)
            else (sorted.((repeat / 2) - 1) +. sorted.(repeat / 2)) /. 2.0
          in
          Printf.eprintf "  run wall time: min %.4fs, median %.4fs\n%!" sorted.(0) median
        end;
        (match Obsv.Metrics.per_slot Ompsim.Stats.par_iterations with
        | [] -> ()
        | cells ->
          List.iter
            (fun (slot, iters) ->
              Printf.printf "  worker %2d: %4d chunks %10d iterations\n" slot
                (Obsv.Metrics.get Ompsim.Stats.par_chunks ~slot)
                iters)
            cells;
          Printf.printf "  iteration imbalance (max/mean): %.3f\n"
            (Obsv.Metrics.imbalance Ompsim.Stats.par_iterations));
        if resilient && Obsv.Control.enabled () then
          Printf.printf
            "  faults: %d injected, %d stalls, %d retries, %d cancellations, %d serial fallbacks\n"
            (Obsv.Metrics.total Ompsim.Stats.faults_injected)
            (Obsv.Metrics.total Ompsim.Stats.fault_stalls)
            (Obsv.Metrics.total Ompsim.Stats.chunk_retries)
            (Obsv.Metrics.total Ompsim.Stats.regions_cancelled)
            (Obsv.Metrics.total Ompsim.Stats.serial_fallbacks);
        Printf.printf "checksum ok (%d)\n" !serial_sum;
        0))

let exec_cmd =
  let size =
    Arg.(
      value
      & opt (some int) None
      & info [ "size"; "n" ] ~docv:"N" ~doc:"Problem size (kernel default when absent).")
  in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"T" ~doc:"Thread count.") in
  let schedule =
    Arg.(
      value
      & opt schedule_conv Ompsim.Schedule.Static
      & info [ "schedule"; "s" ] ~docv:"SCHED"
          ~doc:
            "static | static:N | dynamic[:N] | guided[:N] | ws[:N] (work-stealing) | dnc[:G] \
             (divide-and-conquer splitting down to grain G).")
  in
  let lanes =
    Arg.(
      value & opt int 1
      & info [ "lanes" ] ~docv:"W"
          ~doc:
            "Lane width for the §VI-A batched walk: blocks of $(docv) consecutive collapsed \
             iterations are materialized in lockstep before the body runs (1 = per-iteration \
             walk).")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"R"
          ~doc:
            "Execute the parallel region $(docv) times, reusing one compiled plan, one runtime \
             recovery and one serial reference across all runs (each run's checksum is still \
             verified). Per-run wall times with their min/median join the stderr accounting \
             block.")
  in
  let native =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Specialize the plan's recovery, stepping and collapsed loop to a shared object \
             (compiled with the system C compiler, cached next to the plan in \
             OMPSIM_PLAN_CACHE) and run each chunk through it. Falls back to the interpreted \
             walk — reported in the accounting block — when no compiler is available, the \
             compile fails, or the nest needs bigint headroom.")
  in
  let reduce =
    let reduce_conv =
      let parse s =
        match Trahrhe.Nest.op_of_string s with
        | Some op -> Ok op
        | None -> Error (`Msg "reduce must be sum | prod | min | max")
      in
      let print fmt op = Format.pp_print_string fmt (Trahrhe.Nest.op_to_string op) in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some reduce_conv) None
      & info [ "reduce" ] ~docv:"OP"
          ~doc:
            "Execute the region as a parallel reduction ($(docv) = sum | prod | min | max) over \
             the collapsed range instead of the checksum walk: per-worker partial accumulators, \
             deterministic combine tree keyed by chunk position, checked exactly against the \
             serial fold. The reduced value polynomial is the kernel's declared clause when it \
             has one, the canonical default otherwise; sum reduces in wrapped int64 (and runs \
             natively under $(b,--native)), prod/min/max reduce in exact rationals.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault injection and run the region supervised. $(docv) is either \
             an on-switch (1/on) or key=value fields: p=PROB (per-chunk failure probability), \
             seed=S, stall=PROB, stall_us=US, max=K (injection budget). Same spec grammar as \
             the OMPSIM_FAULTS environment variable.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"R"
          ~doc:
            "Retry a failing chunk up to $(docv) times (with backoff) before cancelling the \
             region; implies supervised execution.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Cancel the region cooperatively once $(docv) milliseconds have elapsed (remaining \
             chunks are reported, not executed); implies supervised execution.")
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:
         "Really execute a kernel's collapsed nest on OCaml domains (one recovery per chunk, §V \
          walk) and check the result against serial enumeration.")
    Term.(
      const exec_run $ kernel_arg $ size $ threads $ schedule $ lanes $ repeat $ native $ reduce
      $ faults $ retries $ deadline_ms $ trace_arg $ stats_arg)

(* ---- emit ---- *)

let emit_run file kernel scheme guarded =
  match nest_of_input ~file ~kernel with
  | Error e ->
    prerr_endline e;
    1
  | Ok nest -> (
    match Trahrhe.Inversion.invert nest with
    | Error e ->
      Printf.eprintf "inversion failed: %s\n" (Trahrhe.Inversion.error_to_string e);
      1
    | Ok inv ->
      let config = { Codegen.Schemes.default_config with guarded } in
      let body = [ Codegen.C_ast.Raw "/* statements(indices) */;" ] in
      let stmts =
        match scheme with
        | Cfront.Transform.Naive -> Codegen.Schemes.naive ~config inv ~body
        | Cfront.Transform.Per_thread -> Codegen.Schemes.per_thread ~config inv ~body
        | Cfront.Transform.Chunked chunk -> Codegen.Schemes.chunked ~config ~chunk inv ~body
        | Cfront.Transform.Simd vlength ->
          Codegen.Schemes.simd ~config ~vlength inv ~body_of:(fun subst ->
              [ Codegen.C_ast.Raw
                  (Printf.sprintf "/* statements(%s) */;"
                     (String.concat ", "
                        (List.map subst (Trahrhe.Nest.level_vars nest)))) ])
      in
      print_string (Codegen.C_print.to_string stmts);
      0)

let emit_cmd =
  let scheme =
    Arg.(
      value
      & opt scheme_conv Cfront.Transform.Per_thread
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"naive | per-thread | chunked:N | simd:N.")
  in
  let guarded = Arg.(value & flag & info [ "guarded" ] ~doc:"Exact post-floor adjustment.") in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Print the collapsed OpenMP C skeleton for a kernel or the first construct of a file.")
    Term.(const emit_run $ file_arg $ kernel_arg $ scheme $ guarded)

(* ---- batch ---- *)

let batch_run file workers trace stats =
  with_obsv ~trace ~stats @@ fun () ->
  if workers <= 0 then begin
    prerr_endline "--workers needs a positive integer";
    exit 1
  end;
  let ic = if file = "-" then stdin else open_in file in
  Fun.protect
    ~finally:(fun () -> if ic != stdin then close_in_noerr ic)
    (fun () -> Service.Server.run_batch ~workers ic stdout)

let batch_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Request file, one request per line ($(b,-) reads stdin).")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers"; "j" ] ~docv:"W"
          ~doc:
            "Concurrent admission slots: at most $(docv) requests are in flight at once; the \
             rest queue (backpressure).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Serve a file of compile/exec requests through the plan cache and print one JSON \
          response line per request (deterministic; the cache hit/miss summary goes to stderr). \
          Set OMPSIM_PLAN_CACHE=DIR to persist compiled plans across runs.")
    Term.(const batch_run $ file $ workers $ trace_arg $ stats_arg)

(* ---- serve ---- *)

let serve_run socket max_clients request_timeout_ms max_inflight_per_client rate_limit rate_burst
    trace stats =
  (* serve converts SIGINT/SIGTERM into a graceful drain and a normal
     return, so the obsv teardown in with_obsv flushes on ^C too, not
     just on shutdown *)
  with_obsv ~trace ~stats @@ fun () ->
  if max_clients <= 0 then begin
    prerr_endline "--max-clients needs a positive integer";
    exit 1
  end;
  (match request_timeout_ms with
  | Some ms when ms < 0 ->
    prerr_endline "--request-timeout-ms needs a non-negative integer";
    exit 1
  | _ -> ());
  if max_inflight_per_client <= 0 then begin
    prerr_endline "--max-inflight-per-client needs a positive integer";
    exit 1
  end;
  (match rate_limit with
  | Some r when r <= 0. ->
    prerr_endline "--rate-limit needs a positive number of requests per second";
    exit 1
  | _ -> ());
  if rate_burst <= 0 then begin
    prerr_endline "--rate-burst needs a positive integer";
    exit 1
  end;
  let config =
    { Service.Server.default_serve_config with
      max_clients;
      request_timeout_ms;
      max_inflight_per_client;
      rate_limit;
      rate_burst }
  in
  match Service.Server.serve ~config ~socket () with
  | Ok stats ->
    if stats.Service.Server.dropped > 0 then
      Printf.eprintf "serve: %d response(s)/request(s) dropped at drain deadline\n%!"
        stats.Service.Server.dropped;
    0
  | Error e ->
    prerr_endline e;
    1

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path to listen on.")
  in
  let max_clients =
    Arg.(
      value
      & opt int Service.Server.default_serve_config.Service.Server.max_clients
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "Connections multiplexed at once; the listen backlog is derived from this, so a \
             connect burst up to $(docv) queues instead of being refused.")
  in
  let request_timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request execution deadline: an exec whose runs exceed $(docv) milliseconds \
             answers with a deterministic error response instead of running to completion.")
  in
  let max_inflight_per_client =
    Arg.(
      value
      & opt int Service.Server.default_serve_config.Service.Server.max_inflight_per_client
      & info [ "max-inflight-per-client" ] ~docv:"N"
          ~doc:
            "Per-connection admission cap: one pipelining client holds at most $(docv) of the \
             global in-flight slots; at the cap its socket simply stops being read \
             (backpressure), so a flood cannot starve other clients.")
  in
  let rate_limit =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate-limit" ] ~docv:"RPS"
          ~doc:
            "Per-connection request rate limit (token bucket, $(b,--rate-burst) capacity). \
             Over-rate requests get a deterministic $(i,rejected:overload) error response; \
             $(b,health) and $(b,shutdown) are exempt. Unlimited when absent.")
  in
  let rate_burst =
    Arg.(
      value
      & opt int Service.Server.default_serve_config.Service.Server.rate_burst
      & info [ "rate-burst" ] ~docv:"N"
          ~doc:
            "Token-bucket capacity for $(b,--rate-limit): the burst a quiet connection may send \
             before pacing applies.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Listen on a Unix domain socket and multiplex compile/exec requests from many clients \
          over one event loop (same line protocol as $(b,batch)) until a client sends \
          $(b,shutdown) or the process receives SIGINT/SIGTERM; both exits drain gracefully — \
          in-flight responses flush before the socket disappears — and cache/native accounting \
          goes to stderr.")
    Term.(
      const serve_run $ socket $ max_clients $ request_timeout_ms $ max_inflight_per_client
      $ rate_limit $ rate_burst $ trace_arg $ stats_arg)

(* ---- kernels ---- *)

let kernels_run () =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      Printf.printf "%-18s %-16s collapse %d/%d  %s\n" k.name k.family k.collapsed k.total_loops
        k.description)
    Kernels.Registry.kernels;
  0

let kernels_cmd =
  Cmd.v
    (Cmd.info "kernels" ~doc:"List the built-in benchmark kernels.")
    Term.(const kernels_run $ const ())

let main =
  Cmd.group
    (Cmd.info "trahrhe" ~version:"1.0.0"
       ~doc:"Automatic collapsing of non-rectangular OpenMP loops (IPDPS'17 reproduction).")
    [ info_cmd;
      collapse_cmd;
      validate_cmd;
      simulate_cmd;
      exec_cmd;
      batch_cmd;
      serve_cmd;
      emit_cmd;
      kernels_cmd
    ]

let () = exit (Cmd.eval' main)
