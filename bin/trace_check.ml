(* Standalone validator for Chrome trace_event JSON files produced by
   the obsv layer (or anything else emitting B/E duration events):
   checks JSON well-formedness, required event fields, balanced and
   properly nested B/E pairs per thread, and per-thread timestamp
   monotonicity. Exit 0 iff the trace is valid. Used by CI on the
   bench-smoke trace artifact. *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
    match Obsv.Trace_check.validate_file path with
    | Ok s ->
      Printf.printf "%s: ok — %d events, %d threads, %d spans (max depth %d), %d counter samples\n"
        path s.Obsv.Trace_check.events s.Obsv.Trace_check.tids s.Obsv.Trace_check.spans
        s.Obsv.Trace_check.max_depth s.Obsv.Trace_check.counters;
      exit 0
    | Error e ->
      Printf.eprintf "%s: INVALID — %s\n" path e;
      exit 1
    | exception Sys_error e ->
      Printf.eprintf "%s\n" e;
      exit 1)
  | _ ->
    prerr_endline "usage: trace_check TRACE.json";
    exit 2
