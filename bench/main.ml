(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§VII), plus ablations. See DESIGN.md for the experiment
   index and EXPERIMENTS.md for paper-vs-measured results.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig9    # one artifact

   Artifacts: fig2 fig8 fig9 fig10 codegen ablation-chunk
   ablation-threads ablation-recovery micro micro-recovery micro-pool
   micro-obsv micro-lanes micro-steal

   micro-recovery, micro-pool, micro-obsv, micro-lanes and micro-steal
   additionally write machine-readable BENCH_recovery.json /
   BENCH_pool.json / BENCH_obsv.json / BENCH_lanes.json /
   BENCH_steal.json (schema_version + git revision stamped) into the
   current directory so the hot-path perf trajectory can be tracked
   across PRs; micro-obsv also writes TRACE_obsv.json, a Chrome
   trace of an instrumented parallel run. micro-lanes and micro-steal
   honour BENCH_LANES_N / BENCH_STEAL_N for CI-sized runs. *)

module K = Kernels.Kernel
module Sim = Ompsim.Sim
module Sched = Ompsim.Schedule

let threads = 12

let base_overheads =
  { Sim.fork_join = Ompsim.Calibrate.default_fork_join;
    dispatch = Ompsim.Calibrate.default_dispatch;
    chunk_start = 0.0;
    per_iter = 0.0 }

let collapsed_overheads =
  { base_overheads with
    chunk_start = Ompsim.Calibrate.default_recovery;
    per_iter = Ompsim.Calibrate.default_increment }

let naive_overheads =
  (* closed-form recovery at every iteration (paper Fig. 3 shape) *)
  { base_overheads with per_iter = Ompsim.Calibrate.default_recovery }

let header title =
  Printf.printf "\n==================== %s ====================\n" title

(* ---------------- Figure 2 ---------------- *)

let fig2 () =
  header "Figure 2: static distribution of the correlation triangle over 5 threads";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let n = 1000 in
  let rows = k.K.outer_costs ~n in
  let blocks = Sched.static_blocks ~nthreads:5 ~n:(Array.length rows) in
  let total = Array.fold_left ( +. ) 0.0 rows in
  Printf.printf "correlation N=%d, schedule(static) on the outer i-loop:\n" n;
  Array.iteri
    (fun t (start, len) ->
      let work = ref 0.0 in
      for q = start to start + len - 1 do
        work := !work +. rows.(q)
      done;
      Printf.printf
        "  thread %d: rows %4d..%4d  work %12.0f  (%.1f%% of total, %.2fx fair share)\n" t start
        (start + len - 1) !work
        (100.0 *. !work /. total)
        (!work /. (total /. 5.0)))
    blocks;
  let coll = k.K.collapsed_costs ~n in
  let cblocks = Sched.static_blocks ~nthreads:5 ~n:(Array.length coll) in
  Printf.printf "after collapsing (pc-loop, schedule(static)):\n";
  Array.iteri
    (fun t (start, len) ->
      let work = ref 0.0 in
      for q = start to start + len - 1 do
        work := !work +. coll.(q)
      done;
      Printf.printf "  thread %d: %7d iterations  work %12.0f  (%.2fx fair share)\n" t len !work
        (!work /. (total /. 5.0)))
    cblocks

(* ---------------- Figure 8 ---------------- *)

let fig6_nest () =
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  Trahrhe.Nest.make ~params:[ "N" ]
    [ { var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.minus_one };
      { var = "j"; lower = A.const Q.zero; upper = A.make [ ("i", Q.one) ] Q.one };
      { var = "k"; lower = A.var "j"; upper = A.make [ ("i", Q.one) ] Q.one } ]

let fig8 () =
  header "Figure 8: r(i,0,0) - pc for the 3-depth nest (parallel curves, N=10)";
  let inv = Trahrhe.Inversion.invert_exn (fig6_nest ()) in
  let r = inv.Trahrhe.Inversion.r_sub.(0) in
  let steps = List.init 12 (fun s -> -2.5 +. (0.5 *. float_of_int s)) in
  Printf.printf "%8s" "i:";
  List.iter (fun x -> Printf.printf "%8.1f" x) steps;
  print_newline ();
  for pc = 1 to 10 do
    Printf.printf "pc=%4d:" pc;
    List.iter
      (fun x ->
        let v =
          Polymath.Polynomial.eval_float (function "i" -> x | _ -> 10.0) r -. float_of_int pc
        in
        Printf.printf "%8.2f" v)
      steps;
    print_newline ()
  done

(* ---------------- Figure 9 ---------------- *)

let fig9 () =
  header "Figure 9: gains of collapsing, 12 threads (simulated makespans, work units)";
  Printf.printf "%-18s %8s %12s %12s %12s %12s %9s %9s\n" "kernel" "n" "static" "dynamic" "guided"
    "collapsed" "g_static" "g_dynamic";
  List.iter
    (fun (k : K.t) ->
      let n = k.K.default_n in
      let outer = k.K.outer_costs ~n in
      let coll = k.K.collapsed_costs ~n in
      let run costs sched ov =
        (Sim.run ~costs ~schedule:sched ~nthreads:threads ~overheads:ov).Sim.makespan
      in
      let ts = run outer Sched.Static base_overheads in
      let td = run outer (Sched.Dynamic 1) base_overheads in
      let tg = run outer (Sched.Guided 1) base_overheads in
      let tc = run coll Sched.Static collapsed_overheads in
      Printf.printf "%-18s %8d %12.3e %12.3e %12.3e %12.3e %8.1f%% %8.1f%%\n" k.K.name n ts td tg
        tc
        (100.0 *. Sim.gain ~baseline:ts ~improved:tc)
        (100.0 *. Sim.gain ~baseline:td ~improved:tc))
    Kernels.Registry.kernels;
  print_endline "(gain = (t_without - t_with)/t_without, as in the paper)"

(* ---------------- Figure 10 ---------------- *)

let fig10 () =
  header "Figure 10: serial control overhead of 12 root evaluations (native wall-clock)";
  Printf.printf "%-18s %8s %12s %12s %10s  %s\n" "kernel" "n" "original(s)" "collapsed(s)"
    "overhead" "checksum";
  List.iter
    (fun (k : K.t) ->
      let n = k.K.fig10_n in
      let o_sum = ref 0.0 and c_sum = ref 0.0 in
      let t_orig =
        Ompsim.Calibrate.time_best ~reps:3 (fun () -> o_sum := k.K.serial_original ~n)
      in
      let t_coll =
        Ompsim.Calibrate.time_best ~reps:3 (fun () ->
            c_sum := k.K.serial_collapsed ~n ~recoveries:12)
      in
      let same = Float.abs (!o_sum -. !c_sum) <= 1e-9 *. Float.max 1.0 (Float.abs !o_sum) in
      Printf.printf "%-18s %8d %12.4f %12.4f %9.2f%%  %s\n" k.K.name n t_orig t_coll
        (100.0 *. (t_coll -. t_orig) /. t_orig)
        (if same then "ok" else "MISMATCH"))
    Kernels.Registry.kernels

(* ---------------- generated code (Figures 3, 4, 7) ---------------- *)

let codegen () =
  header "Figures 3/4/7: generated collapsed OpenMP C";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let inv = K.inversion k in
  let body =
    [ Codegen.C_ast.Raw "for (k = 0; k < N; k++) a[i][j] += b[k][i] * c[k][j];";
      Codegen.C_ast.Raw "a[j][i] = a[i][j];" ]
  in
  let config = { Codegen.Schemes.default_config with extra_private = [ "k" ] } in
  print_endline "--- Figure 3 (naive) ---";
  print_string (Codegen.C_print.to_string (Codegen.Schemes.naive ~config inv ~body));
  print_endline "--- Figure 4 (per-thread recovery) ---";
  print_string (Codegen.C_print.to_string (Codegen.Schemes.per_thread ~config inv ~body));
  let inv3 = Trahrhe.Inversion.invert_exn (fig6_nest ()) in
  print_endline "--- Figure 7 (3-depth nest, complex recovery) ---";
  print_string
    (Codegen.C_print.to_string
       (Codegen.Schemes.naive inv3 ~body:[ Codegen.C_ast.Raw "S(i, j, k);" ]))

(* ---------------- ablations ---------------- *)

let ablation_chunk () =
  header "Ablation A1: chunk size of the chunked recovery scheme (correlation, 12 threads)";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let n = k.K.default_n in
  let coll = k.K.collapsed_costs ~n in
  Printf.printf "%10s %12s %12s %10s\n" "chunk" "makespan" "chunks" "imbalance";
  List.iter
    (fun chunk ->
      let r =
        Sim.run ~costs:coll ~schedule:(Sched.Static_chunk chunk) ~nthreads:threads
          ~overheads:collapsed_overheads
      in
      Printf.printf "%10d %12.3e %12d %10.3f\n" chunk r.Sim.makespan r.Sim.chunks_dispatched
        r.Sim.imbalance)
    [ 16; 64; 256; 1024; 4096; 16384; 65536 ];
  let r =
    Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:threads ~overheads:collapsed_overheads
  in
  Printf.printf "%10s %12.3e %12d %10.3f\n" "static" r.Sim.makespan r.Sim.chunks_dispatched
    r.Sim.imbalance

let ablation_threads () =
  header "Ablation A2: thread scaling (gain of collapsed+static vs originals)";
  List.iter
    (fun name ->
      let k = Option.get (Kernels.Registry.find name) in
      let n = k.K.default_n in
      Printf.printf "%s (n=%d):\n%8s %12s %12s %12s %9s %9s\n" name n "threads" "static" "dynamic"
        "collapsed" "g_static" "g_dyn";
      List.iter
        (fun t ->
          let outer = k.K.outer_costs ~n and coll = k.K.collapsed_costs ~n in
          let ts =
            (Sim.run ~costs:outer ~schedule:Sched.Static ~nthreads:t ~overheads:base_overheads)
              .Sim.makespan
          in
          let td =
            (Sim.run ~costs:outer ~schedule:(Sched.Dynamic 1) ~nthreads:t
               ~overheads:base_overheads)
              .Sim.makespan
          in
          let tc =
            (Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:t
               ~overheads:collapsed_overheads)
              .Sim.makespan
          in
          Printf.printf "%8d %12.3e %12.3e %12.3e %8.1f%% %8.1f%%\n" t ts td tc
            (100.0 *. Sim.gain ~baseline:ts ~improved:tc)
            (100.0 *. Sim.gain ~baseline:td ~improved:tc))
        [ 2; 4; 8; 12; 24; 48; 96 ])
    [ "correlation"; "ltmp"; "fdtd_skewed" ]

let ablation_recovery () =
  header "Ablation A3: index recovery strategies";
  Printf.printf "%-18s %14s %14s %14s   %s\n" "kernel" "closed(ns)" "guarded(ns)" "binsearch(ns)"
    "naive-scheme makespan penalty";
  List.iter
    (fun (k : K.t) ->
      let n = max 64 (k.K.fig10_n / 2) in
      let rc = K.recovery k ~n in
      let trip = Trahrhe.Recovery.trip_count rc in
      let reps = 20_000 in
      let time_ns f =
        let t0 = Unix.gettimeofday () in
        let sink = ref 0 in
        for q = 1 to reps do
          let pc = 1 + (q * 7919 mod trip) in
          sink := !sink + (f pc).(0)
        done;
        ignore !sink;
        (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
      in
      let closed = time_ns (Trahrhe.Recovery.recover rc) in
      let guarded = time_ns (Trahrhe.Recovery.recover_guarded rc) in
      let binsearch = time_ns (Trahrhe.Recovery.recover_binsearch rc) in
      let coll = k.K.collapsed_costs ~n:k.K.default_n in
      let t_naive =
        (Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:threads ~overheads:naive_overheads)
          .Sim.makespan
      in
      let t_pt =
        (Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:threads
           ~overheads:collapsed_overheads)
          .Sim.makespan
      in
      Printf.printf "%-18s %14.0f %14.0f %14.0f   +%.1f%%\n" k.K.name closed guarded binsearch
        (100.0 *. ((t_naive /. t_pt) -. 1.0)))
    Kernels.Registry.kernels

let ablation_gpu () =
  header "Ablation A4: GPU warp mapping (§VI-B cost model, correlation)";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let n = 600 in
  let coll = k.K.collapsed_costs ~n in
  let total = Array.length coll in
  (* row-major address of the (i,j) element touched by each collapsed
     iteration: walk the triangle once to record them *)
  let addresses = Array.make total 0 in
  let rc = K.recovery k ~n in
  let idx = Trahrhe.Recovery.first rc in
  for q = 0 to total - 1 do
    addresses.(q) <- (idx.(0) * n) + idx.(1);
    if q < total - 1 then ignore (Trahrhe.Recovery.increment rc idx)
  done;
  Printf.printf "%12s %10s %12s %14s %12s\n" "mapping" "warp" "compute" "transactions" "time";
  List.iter
    (fun (name, mapping) ->
      List.iter
        (fun warp ->
          let r =
            Ompsim.Gpu.run ~n:total ~warp ~mapping
              ~cost:(fun q -> coll.(q) /. float_of_int n)
              ~address:(fun q -> addresses.(q))
              ~line:16 ~transaction_cost:8.0
          in
          Printf.printf "%12s %10d %12.3e %14d %12.3e\n" name warp r.Ompsim.Gpu.compute
            r.Ompsim.Gpu.transactions r.Ompsim.Gpu.time)
        [ 16; 32; 64 ])
    [ ("coalesced", Ompsim.Gpu.Coalesced); ("blocked", Ompsim.Gpu.Blocked) ];
  print_endline "(coalesced = the paper's consecutive-rank-per-warp distribution)"

let ablation_simd () =
  header "Ablation A5: SIMD vectorization of the collapsed loop (§VI-A model)";
  Printf.printf "%-18s %8s %12s %12s %10s\n" "kernel" "vlength" "scalar" "vector" "speedup";
  List.iter
    (fun name ->
      let k = Option.get (Kernels.Registry.find name) in
      let costs = k.K.collapsed_costs ~n:(max 16 (k.K.default_n / 4)) in
      (* per-lane work normalized to one unit so vlength lanes of the
         inner loop vectorize; fill = one tuple store + §V increment *)
      let unit = Array.map (fun c -> c /. Float.max 1.0 c) costs in
      List.iter
        (fun vlength ->
          let r = Ompsim.Simd.run ~costs:unit ~vlength ~fill:0.06 in
          Printf.printf "%-18s %8d %12.3e %12.3e %9.2fx\n" name vlength r.Ompsim.Simd.scalar_time
            r.Ompsim.Simd.vector_time r.Ompsim.Simd.speedup)
        [ 2; 4; 8; 16 ])
    [ "utma"; "dynprog" ]

(* ---------------- bechamel micro-benchmarks ---------------- *)

let micro () =
  header "Micro-benchmarks (bechamel, ns/run)";
  let open Bechamel in
  let open Toolkit in
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let rc = K.recovery corr ~n:2000 in
  let trip = Trahrhe.Recovery.trip_count rc in
  let symm = Option.get (Kernels.Registry.find "symm") in
  let rc3 = K.recovery symm ~n:100 in
  let trip3 = Trahrhe.Recovery.trip_count rc3 in
  let big_a = Zmath.Bigint.of_string "123456789012345678901234567890123456789" in
  let big_b = Zmath.Bigint.of_string "987654321098765432109876543210987654321" in
  let ranking = (K.inversion corr).Trahrhe.Inversion.ranking in
  let counter = ref 0 in
  let next_pc t =
    counter := (!counter + 7919) mod t;
    1 + !counter
  in
  let costs = corr.K.collapsed_costs ~n:500 in
  let rows = corr.K.outer_costs ~n:500 in
  let idx = Trahrhe.Recovery.first rc in
  let tests =
    [ Test.make ~name:"recover_closed_deg2"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover rc (next_pc trip)));
      Test.make ~name:"recover_guarded_deg2"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover_guarded rc (next_pc trip)));
      Test.make ~name:"recover_binsearch_deg2"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover_binsearch rc (next_pc trip)));
      Test.make ~name:"recover_closed_deg3"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover rc3 (next_pc trip3)));
      Test.make ~name:"rank_eval_exact"
        (Staged.stage (fun () -> Trahrhe.Recovery.rank rc [| 100; 200 |]));
      Test.make ~name:"increment"
        (Staged.stage (fun () ->
             if not (Trahrhe.Recovery.increment rc idx) then begin
               idx.(0) <- 0;
               idx.(1) <- 1
             end));
      Test.make ~name:"bigint_mul_128bit" (Staged.stage (fun () -> Zmath.Bigint.mul big_a big_b));
      Test.make ~name:"poly_mul_ranking^2"
        (Staged.stage (fun () -> Polymath.Polynomial.mul ranking ranking));
      Test.make ~name:"invert_correlation"
        (Staged.stage (fun () -> Trahrhe.Inversion.invert_exn corr.K.nest));
      Test.make ~name:"sim_static_125k"
        (Staged.stage (fun () ->
             Sim.run ~costs ~schedule:Sched.Static ~nthreads:12 ~overheads:collapsed_overheads));
      Test.make ~name:"sim_dynamic_500rows"
        (Staged.stage (fun () ->
             Sim.run ~costs:rows ~schedule:(Sched.Dynamic 1) ~nthreads:12
               ~overheads:base_overheads)) ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"micro" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let entries =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some [ est ] -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Printf.printf "  %-36s %12.1f ns/run\n" name est) entries

(* ---------------- hot-path engine artifacts (JSON-emitting) ---------------- *)

(* every BENCH_*.json carries the artifact schema version and the git
   revision that produced it, so the perf trajectory across PRs stays
   attributable *)
let bench_schema_version = 2

let git_describe =
  lazy
    (try
       let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       (match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown")
     with Unix.Unix_error _ | Sys_error _ -> "unknown")

let json_provenance () =
  Printf.sprintf {|"schema_version": %d,
  "git": "%s",|} bench_schema_version (Lazy.force git_describe)

(* fail fast, BEFORE measuring for seconds, if the output path cannot
   be created (read-only checkout, missing directory, ...) *)
let ensure_writable path =
  try close_out (open_out path)
  with Sys_error e ->
    Printf.eprintf "cannot write bench artifact %s: %s\n" path e;
    exit 1

let write_file path contents =
  (try
     let oc = open_out path in
     output_string oc contents;
     close_out oc
   with Sys_error e ->
     Printf.eprintf "cannot write bench artifact %s: %s\n" path e;
     exit 1);
  Printf.printf "wrote %s\n" path

(* per-iteration cost of the strategies for executing a collapsed
   chunk: full recovery each iteration (the naive scheme), §V
   incrementation with per-step polynomial re-evaluation of the bounds
   (flat-term and Horner pipelines), and the compiled walk whose carries
   advance the bounds by finite-difference tables *)
let micro_recovery () =
  header "micro-recovery: ns/iter walking the collapsed correlation nest (N=1000)";
  ensure_writable "BENCH_recovery.json";
  let n = 1000 in
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let inv = K.inversion corr in
  let rc = K.recovery corr ~n in
  let rc_flat = Trahrhe.Recovery.make ~compiled:false inv ~param:(K.param_of corr ~n) in
  let trip = Trahrhe.Recovery.trip_count rc in
  let sink = ref 0 in
  let time_ns f =
    let s = Ompsim.Calibrate.time_best ~reps:3 f in
    s *. 1e9 /. float_of_int trip
  in
  let recover_each =
    time_ns (fun () ->
        for pc = 1 to trip do
          sink := !sink + (Trahrhe.Recovery.recover_guarded rc pc).(0)
        done)
  in
  let increment_with rc =
    time_ns (fun () ->
        let idx = Trahrhe.Recovery.first rc in
        for _ = 1 to trip do
          sink := !sink + idx.(0);
          ignore (Trahrhe.Recovery.increment rc idx)
        done)
  in
  let increment_flat = increment_with rc_flat in
  let increment_horner = increment_with rc in
  let fdiff_walk =
    time_ns (fun () -> Trahrhe.Recovery.walk rc ~pc:1 ~len:trip (fun idx -> sink := !sink + idx.(0)))
  in
  ignore !sink;
  Printf.printf "%-54s %10s\n" "strategy" "ns/iter";
  List.iter
    (fun (name, ns) -> Printf.printf "%-54s %10.1f\n" name ns)
    [ ("guarded closed-form recovery at every iteration", recover_each);
      ("§V increment, flat-term bound re-evaluation", increment_flat);
      ("§V increment, Horner bound re-evaluation", increment_horner);
      ("compiled walk, finite-difference bound stepping", fdiff_walk) ];
  Printf.printf "walk vs re-evaluating increment: %.1fx; walk vs naive recovery: %.1fx\n"
    (increment_horner /. fdiff_walk)
    (recover_each /. fdiff_walk);
  write_file "BENCH_recovery.json"
    (Printf.sprintf
       {|{
  "artifact": "micro-recovery",
  %s
  "kernel": "correlation",
  "n": %d,
  "iterations": %d,
  "ns_per_iter": {
    "recover_each": %.2f,
    "increment_flat_terms": %.2f,
    "increment_horner": %.2f,
    "fdiff_walk": %.2f
  },
  "speedup": {
    "walk_vs_increment_horner": %.3f,
    "walk_vs_recover_each": %.3f,
    "horner_vs_flat_increment": %.3f
  }
}
|}
       (json_provenance ()) n trip recover_each increment_flat increment_horner fdiff_walk
       (increment_horner /. fdiff_walk)
       (recover_each /. fdiff_walk)
       (increment_flat /. increment_horner))

(* per-region overhead of the real executor: warm pool dispatch vs
   spawning fresh domains per parallel region *)
let micro_pool () =
  header "micro-pool: per-region overhead of Par.parallel_for (ns/call)";
  ensure_writable "BENCH_pool.json";
  let thread_counts = [ 2; 4; 8 ] in
  let measure backend nthreads =
    Ompsim.Calibrate.measure_region_overhead ~calls:200 ~backend ~nthreads ()
  in
  Printf.printf "%10s %14s %14s %10s\n" "nthreads" "spawn(ns)" "pool(ns)" "ratio";
  let rows =
    List.map
      (fun nthreads ->
        let spawn = measure Ompsim.Par.Spawn nthreads in
        let pool = measure Ompsim.Par.Pool nthreads in
        Printf.printf "%10d %14.0f %14.0f %9.1fx\n" nthreads spawn pool (spawn /. pool);
        (nthreads, spawn, pool))
      thread_counts
  in
  let json_rows =
    rows
    |> List.map (fun (nthreads, spawn, pool) ->
           Printf.sprintf
             {|    { "nthreads": %d, "spawn_ns": %.0f, "pool_ns": %.0f, "spawn_over_pool": %.3f }|}
             nthreads spawn pool (spawn /. pool))
    |> String.concat ",\n"
  in
  write_file "BENCH_pool.json"
    (Printf.sprintf
       {|{
  "artifact": "micro-pool",
  %s
  "calls_per_measurement": 200,
  "pool_workers_alive": %d,
  "regions": [
%s
  ]
}
|}
       (json_provenance ()) (Ompsim.Pool.size ()) json_rows)

(* overhead and imbalance of the observability layer itself: the §V
   walk loop with instrumentation absent / disabled / enabled, then a
   real instrumented parallel execution whose per-worker counters give
   the imbalance histogram; also emits TRACE_obsv.json for CI's
   Chrome-trace validation *)
let micro_obsv () =
  header "micro-obsv: observability overhead on the walk loop (correlation, N=1000)";
  ensure_writable "BENCH_obsv.json";
  ensure_writable "TRACE_obsv.json";
  let n = 1000 in
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let rc = K.recovery corr ~n in
  let trip = Trahrhe.Recovery.trip_count rc in
  let chunk = 512 in
  let sink = ref 0 in
  let time_ns f =
    let s = Ompsim.Calibrate.time_best ~reps:5 f in
    s *. 1e9 /. float_of_int trip
  in
  let full walk () = walk rc ~pc:1 ~len:trip (fun idx -> sink := !sink + idx.(0)) in
  let chunked walk () =
    let start = ref 0 in
    while !start < trip do
      walk rc ~pc:(!start + 1)
        ~len:(min chunk (trip - !start))
        (fun idx -> sink := !sink + idx.(0));
      start := !start + chunk
    done
  in
  Obsv.Control.set_enabled false;
  let bare_full = time_ns (full Trahrhe.Recovery.walk_uninstrumented) in
  let bare_chunked = time_ns (chunked Trahrhe.Recovery.walk_uninstrumented) in
  let disabled_full = time_ns (full Trahrhe.Recovery.walk) in
  let disabled_chunked = time_ns (chunked Trahrhe.Recovery.walk) in
  let enabled_chunked =
    Obsv.Control.with_enabled true (fun () -> time_ns (chunked Trahrhe.Recovery.walk))
  in
  ignore !sink;
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  let pct over base = 100.0 *. ((over -. base) /. base) in
  Printf.printf "%-46s %10s\n" "variant" "ns/iter";
  List.iter
    (fun (name, ns) -> Printf.printf "%-46s %10.2f\n" name ns)
    [ ("walk_uninstrumented, one chunk", bare_full);
      ("walk_uninstrumented, 512-chunks", bare_chunked);
      ("walk, obsv disabled, one chunk", disabled_full);
      ("walk, obsv disabled, 512-chunks", disabled_chunked);
      ("walk, obsv enabled, 512-chunks", enabled_chunked) ];
  Printf.printf "disabled overhead: %+.2f%% (one chunk), %+.2f%% (512-chunks); enabled tracing: %+.2f%%\n"
    (pct disabled_full bare_full) (pct disabled_chunked bare_chunked)
    (pct enabled_chunked bare_chunked);
  (* instrumented parallel runs: per-worker chunk/iteration histogram *)
  let nthreads = 4 in
  let parallel_section schedule =
    Ompsim.Stats.reset ();
    Ompsim.Par.parallel_for_chunks ~nthreads ~schedule ~n:trip (fun ~thread:_ ~start ~len ->
        Trahrhe.Recovery.walk rc ~pc:(start + 1) ~len (fun idx -> sink := !sink + idx.(0)));
    let per_worker =
      Obsv.Metrics.per_slot Ompsim.Stats.par_iterations
      |> List.map (fun (slot, iters) ->
             Printf.sprintf {|        { "slot": %d, "chunks": %d, "iterations": %d }|} slot
               (Obsv.Metrics.get Ompsim.Stats.par_chunks ~slot)
               iters)
      |> String.concat ",\n"
    in
    let imb = Obsv.Metrics.imbalance Ompsim.Stats.par_iterations in
    Printf.printf "  %-14s imbalance (max/mean iterations per worker): %.3f\n"
      (Sched.to_string schedule) imb;
    Ompsim.Stats.emit_trace_counters ();
    Printf.sprintf
      {|    { "schedule": "%s", "nthreads": %d, "imbalance": %.4f,
      "per_worker": [
%s
      ] }|}
      (Sched.to_string schedule) nthreads imb per_worker
  in
  let sections =
    Obsv.Control.with_enabled true (fun () ->
        let s1 = parallel_section Sched.Static in
        let s2 = parallel_section (Sched.Dynamic chunk) in
        Obsv.Trace.write "TRACE_obsv.json";
        [ s1; s2 ])
  in
  Printf.printf "wrote TRACE_obsv.json (%d events)\n" (Obsv.Trace.event_count ());
  write_file "BENCH_obsv.json"
    (Printf.sprintf
       {|{
  "artifact": "micro-obsv",
  %s
  "kernel": "correlation",
  "n": %d,
  "iterations": %d,
  "chunk": %d,
  "ns_per_iter": {
    "walk_uninstrumented_full": %.2f,
    "walk_uninstrumented_chunked": %.2f,
    "walk_disabled_full": %.2f,
    "walk_disabled_chunked": %.2f,
    "walk_enabled_chunked": %.2f
  },
  "overhead_pct": {
    "disabled_full": %.3f,
    "disabled_chunked": %.3f,
    "enabled_chunked": %.3f
  },
  "parallel": [
%s
  ],
  "trace_events": %d
}
|}
       (json_provenance ()) n trip chunk bare_full bare_chunked disabled_full disabled_chunked
       enabled_chunked (pct disabled_full bare_full) (pct disabled_chunked bare_chunked)
       (pct enabled_chunked bare_chunked)
       (String.concat ",\n" sections)
       (Obsv.Trace.event_count ()))

(* positive integer from the environment, for CI to shrink the bench
   sizes without patching the source *)
let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

(* §VI-A batched lane-walk vs the per-iteration walk callback: same
   kernel, same chunking, the body reduced to one add per iteration so
   the difference is pure delivery mechanism (closure call per
   iteration vs Array.fill runs + one closure call per block) *)
let micro_lanes () =
  let n = env_int "BENCH_LANES_N" 1000 in
  header (Printf.sprintf "micro-lanes: walk vs walk_lanes ns/iter (correlation, N=%d)" n);
  ensure_writable "BENCH_lanes.json";
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let rc = K.recovery corr ~n in
  let trip = Trahrhe.Recovery.trip_count rc in
  let chunk = min trip 4096 in
  let sink = ref 0 in
  let time_ns f =
    let s = Ompsim.Calibrate.time_best ~reps:5 f in
    s *. 1e9 /. float_of_int trip
  in
  let chunked per_chunk () =
    let start = ref 0 in
    while !start < trip do
      per_chunk ~pc:(!start + 1) ~len:(min chunk (trip - !start));
      start := !start + chunk
    done
  in
  let walk_ns =
    time_ns
      (chunked (fun ~pc ~len ->
           Trahrhe.Recovery.walk rc ~pc ~len (fun idx -> sink := !sink + idx.(0))))
  in
  let lanes_ns vlength =
    time_ns
      (chunked (fun ~pc ~len ->
           Trahrhe.Recovery.walk_lanes rc ~pc ~len ~vlength (fun ~base:_ ~count lanes ->
               let row = lanes.(0) in
               let acc = ref 0 in
               for l = 0 to count - 1 do
                 acc := !acc + row.(l)
               done;
               sink := !sink + !acc)))
  in
  let vlengths = [ 1; 4; 8; 16; 32 ] in
  let rows = List.map (fun v -> (v, lanes_ns v)) vlengths in
  ignore !sink;
  Printf.printf "%-40s %10s %9s\n" "variant" "ns/iter" "vs walk";
  Printf.printf "%-40s %10.2f %9s\n" "walk, per-iteration callback" walk_ns "1.00x";
  List.iter
    (fun (v, ns) ->
      Printf.printf "%-40s %10.2f %8.2fx\n"
        (Printf.sprintf "walk_lanes, vlength %d" v)
        ns (walk_ns /. ns))
    rows;
  let json_rows =
    rows
    |> List.map (fun (v, ns) ->
           Printf.sprintf
             {|    { "vlength": %d, "ns_per_iter": %.2f, "speedup_vs_walk": %.3f }|} v ns
             (walk_ns /. ns))
    |> String.concat ",\n"
  in
  write_file "BENCH_lanes.json"
    (Printf.sprintf
       {|{
  "artifact": "micro-lanes",
  %s
  "kernel": "correlation",
  "n": %d,
  "iterations": %d,
  "chunk": %d,
  "walk_ns_per_iter": %.2f,
  "lanes": [
%s
  ],
  "speedup": {
    "vlength_8_vs_walk": %.3f,
    "vlength_32_vs_walk": %.3f
  }
}
|}
       (json_provenance ()) n trip chunk walk_ns json_rows
       (walk_ns /. List.assoc 8 rows)
       (walk_ns /. List.assoc 32 rows))

(* scheduling-overhead shootout on a skewed-cost workload: a central
   mutex-protected chunk queue (the textbook dynamic scheduler), the
   atomic fetch-add Dynamic dispatcher, and the Chase-Lev work-stealing
   deques — followed by an instrumented run whose steal counters must
   reconcile exactly against the ground-truth chunk count *)
let micro_steal () =
  let n = env_int "BENCH_STEAL_N" 200_000 in
  header (Printf.sprintf "micro-steal: scheduler overhead on %d skewed iterations" n);
  ensure_writable "BENCH_steal.json";
  (* default 2 workers: the schedulers are compared under modest
     oversubscription — with many more domains than cores the run is
     dominated by OS descheduling (a parked owner strands its claimed
     batch), which measures the kernel's scheduler, not ours *)
  let nthreads = env_int "BENCH_STEAL_T" 2 in
  let chunk = env_int "BENCH_STEAL_CHUNK" 8 in
  let skew = 64 in
  let stride = 16 in
  let partial = Array.make (nthreads * stride) 0 in
  (* triangular per-iteration cost, like a collapsed triangular nest's
     rows: iteration q spins ~q*skew/n times, so the tail chunks cost
     skew spins while the head chunks cost none and rebalancing
     matters *)
  let do_chunk thread start len =
    let cell = thread * stride in
    let acc = ref 0 in
    for q = start to start + len - 1 do
      let spins = q * skew / n in
      let r = ref 0 in
      for _ = 1 to spins do
        incr r
      done;
      acc := !acc + !r
    done;
    partial.(cell) <- partial.(cell) + !acc
  in
  let reset () = Array.fill partial 0 (Array.length partial) 0 in
  let run_mutex () =
    reset ();
    let next = ref 0 in
    let m = Mutex.create () in
    Ompsim.Pool.run ~nthreads (fun t ->
        let live = ref true in
        while !live do
          Mutex.lock m;
          let s = !next in
          if s >= n then begin
            Mutex.unlock m;
            live := false
          end
          else begin
            next := s + chunk;
            Mutex.unlock m;
            do_chunk t s (min chunk (n - s))
          end
        done)
  in
  let run_sched schedule () =
    reset ();
    Ompsim.Par.parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread ~start ~len ->
        do_chunk thread start len)
  in
  (* interleave the contenders within every rep round so CPU frequency
     drift between measurements biases none of them; keep the per-
     scheduler minimum, as time_best would *)
  let runners = [| run_mutex; run_sched (Sched.Dynamic chunk); run_sched (Sched.Work_stealing chunk) |] in
  let best = Array.make (Array.length runners) infinity in
  let rounds = env_int "BENCH_STEAL_ROUNDS" 15 in
  Array.iter (fun f -> f ()) runners (* warm pool, deque cache, page tables *);
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        f ();
        best.(i) <- Float.min best.(i) ((Unix.gettimeofday () -. t0) *. 1e3))
      runners
  done;
  let t_mutex = best.(0) and t_dyn = best.(1) and t_ws = best.(2) in
  Printf.printf "%-38s %10s %9s\n" "scheduler" "ms" "vs mutex";
  List.iter
    (fun (name, t) -> Printf.printf "%-38s %10.2f %8.2fx\n" name t (t_mutex /. t))
    [ ("central mutex queue", t_mutex);
      ("atomic fetch-add dynamic", t_dyn);
      ("work-stealing deques", t_ws) ];
  (* counter reconciliation: every dealt chunk is popped locally or
     stolen, exactly once *)
  let truth = (n + chunk - 1) / chunk in
  let pops, steals, retries, par_chunks =
    Obsv.Control.with_enabled true (fun () ->
        Ompsim.Stats.reset ();
        run_sched (Sched.Work_stealing chunk) ();
        ( Obsv.Metrics.total Ompsim.Stats.ws_local_pops,
          Obsv.Metrics.total Ompsim.Stats.ws_steals,
          Obsv.Metrics.total Ompsim.Stats.ws_steal_retries,
          Obsv.Metrics.total Ompsim.Stats.par_chunks ))
  in
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  let reconciled = pops + steals = truth && par_chunks = truth in
  Printf.printf
    "ws counters: %d local pops + %d steals = %d (ground truth %d chunks, %d CAS retries) %s\n"
    pops steals (pops + steals) truth retries
    (if reconciled then "ok" else "MISMATCH");
  write_file "BENCH_steal.json"
    (Printf.sprintf
       {|{
  "artifact": "micro-steal",
  %s
  "n": %d,
  "chunk": %d,
  "nthreads": %d,
  "skew": %d,
  "ground_truth_chunks": %d,
  "time_ms": {
    "mutex_queue": %.3f,
    "dynamic_atomic": %.3f,
    "work_stealing": %.3f
  },
  "speedup": {
    "ws_vs_mutex": %.3f,
    "ws_vs_dynamic": %.3f
  },
  "counters": {
    "local_pops": %d,
    "steals": %d,
    "steal_retries": %d,
    "pops_plus_steals": %d,
    "par_chunks": %d,
    "reconciled": %b
  }
}
|}
       (json_provenance ()) n chunk nthreads skew truth t_mutex t_dyn t_ws (t_mutex /. t_ws)
       (t_dyn /. t_ws) pops steals retries (pops + steals) par_chunks reconciled)

(* micro-fault: cost of the fault-tolerance layer. Two questions:
   (1) what does supervision cost when nothing ever fails — the
   per-chunk cancellation check, success bookkeeping and the Result
   plumbing of [run_resilient] vs the plain path (must be within
   noise at realistic chunk sizes); (2) how does recovery latency grow
   with the injected fault rate, and do the fault counters reconcile
   with an exact checksum at every rate. *)
let micro_fault () =
  let n = env_int "BENCH_FAULT_N" 200_000 in
  header (Printf.sprintf "micro-fault: supervision overhead + recovery latency on %d iterations" n);
  ensure_writable "BENCH_fault.json";
  let nthreads = env_int "BENCH_FAULT_T" 2 in
  let chunk = env_int "BENCH_FAULT_CHUNK" 64 in
  let retries = 2 in
  let schedule = Sched.Dynamic chunk in
  let stride = 16 in
  let partial = Array.make (nthreads * stride) 0 in
  let do_chunk thread start len =
    let cell = thread * stride in
    let acc = ref 0 in
    for q = start to start + len - 1 do
      acc := !acc + q
    done;
    partial.(cell) <- partial.(cell) + !acc
  in
  let reset () = Array.fill partial 0 (Array.length partial) 0 in
  let checksum () =
    let s = ref 0 in
    for t = 0 to nthreads - 1 do
      s := !s + partial.(t * stride)
    done;
    !s
  in
  let expected = n * (n - 1) / 2 in
  let run_plain () =
    reset ();
    Ompsim.Par.parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread ~start ~len ->
        do_chunk thread start len)
  in
  let run_resilient ?(retries = 0) faults () =
    reset ();
    (* ~faults:(Some cfg) arms this region only; ~faults:None
       suppresses even an OMPSIM_FAULTS env spec, so the no-fault
       measurement is honest in a faulted CI job *)
    match
      Ompsim.Par.run_resilient ~retries ~faults ~nthreads ~schedule ~n (fun ~thread ~start ~len ->
          do_chunk thread start len)
    with
    | Ok () -> ()
    | Error e -> failwith (Ompsim.Par.describe_error e)
  in
  (* (1) interleaved rounds, keep per-contender minimum (as time_best
     would): supervision cost with no faults, no deadline, no retries *)
  let runners = [| run_plain; run_resilient None |] in
  let best = Array.make (Array.length runners) infinity in
  let rounds = env_int "BENCH_FAULT_ROUNDS" 15 in
  Array.iter (fun f -> f ()) runners (* warm pool and page tables *);
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        f ();
        best.(i) <- Float.min best.(i) ((Unix.gettimeofday () -. t0) *. 1e3))
      runners
  done;
  let t_plain = best.(0) and t_resilient = best.(1) in
  let overhead_pct = (t_resilient -. t_plain) /. t_plain *. 100.0 in
  let nchunks = (n + chunk - 1) / chunk in
  let ns_per_chunk = (t_resilient -. t_plain) *. 1e6 /. float_of_int nchunks in
  let ns_per_iter = (t_resilient -. t_plain) *. 1e6 /. float_of_int n in
  Printf.printf "%-38s %10.2f ms\n" "plain parallel_for_chunks" t_plain;
  Printf.printf "%-38s %10.2f ms  (%+.1f%%)\n" "run_resilient, faults disabled" t_resilient
    overhead_pct;
  (* the body above is an empty-weight sum, so the percentage is the
     worst case; the absolute cost is what a real kernel pays *)
  Printf.printf "%-38s %10.1f ns/chunk  (%.2f ns/iteration)\n" "supervision cost" ns_per_chunk
    ns_per_iter;
  (* (2) recovery latency and counter reconciliation vs fault rate *)
  let rates = [ 0.0; 0.02; 0.1; 0.3 ] in
  Printf.printf "%-38s %10s %9s %8s %10s %9s\n" "injected fault rate" "ms" "injected" "retries"
    "cancelled" "fallback";
  let all_ok = ref true in
  let rows =
    List.map
      (fun p ->
        let faults = Some { Ompsim.Fault.default with p; seed = 11 } in
        (* timing with the obsv layer off *)
        let t_ms =
          let best = ref infinity in
          for _ = 1 to 3 do
            let t0 = Unix.gettimeofday () in
            run_resilient ~retries faults ();
            best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1e3)
          done;
          !best
        in
        (* counters from one instrumented run of the same region *)
        let injected, retried, cancelled, fallbacks, iters =
          Obsv.Control.with_enabled true (fun () ->
              Ompsim.Stats.reset ();
              run_resilient ~retries faults ();
              ( Obsv.Metrics.total Ompsim.Stats.faults_injected,
                Obsv.Metrics.total Ompsim.Stats.chunk_retries,
                Obsv.Metrics.total Ompsim.Stats.regions_cancelled,
                Obsv.Metrics.total Ompsim.Stats.serial_fallbacks,
                Obsv.Metrics.total Ompsim.Stats.par_iterations ))
        in
        let sum_ok = checksum () = expected in
        let counters_ok =
          iters = n && retried <= injected
          && (p = 0.0) = (injected = 0)
          && (cancelled = 0 || fallbacks > 0 || injected > 0)
        in
        if not (sum_ok && counters_ok) then all_ok := false;
        Printf.printf "p=%-36g %10.2f %9d %8d %10d %9d %s\n" p t_ms injected retried cancelled
          fallbacks
          (if sum_ok then "ok" else "CHECKSUM MISMATCH");
        Printf.sprintf
          {|    { "p": %g, "time_ms": %.3f, "injected": %d, "retries": %d, "cancelled": %d, "serial_fallbacks": %d, "iterations": %d, "checksum_ok": %b }|}
          p t_ms injected retried cancelled fallbacks iters sum_ok)
      rates
  in
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  write_file "BENCH_fault.json"
    (Printf.sprintf
       {|{
  "artifact": "micro-fault",
  %s
  "n": %d,
  "chunk": %d,
  "nthreads": %d,
  "retries": %d,
  "supervision_overhead": {
    "plain_ms": %.3f,
    "resilient_ms": %.3f,
    "overhead_pct": %.2f,
    "overhead_ns_per_chunk": %.1f,
    "overhead_ns_per_iter": %.3f
  },
  "rates": [
%s
  ],
  "reconciled": %b
}
|}
       (json_provenance ()) n chunk nthreads retries t_plain t_resilient overhead_pct
       ns_per_chunk ns_per_iter
       (String.concat ",\n" rows) !all_ok)

(* ---------------- driver ---------------- *)

let artifacts =
  [ ("fig2", fig2);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("codegen", codegen);
    ("ablation-chunk", ablation_chunk);
    ("ablation-threads", ablation_threads);
    ("ablation-recovery", ablation_recovery);
    ("ablation-gpu", ablation_gpu);
    ("ablation-simd", ablation_simd);
    ("micro", micro);
    ("micro-recovery", micro_recovery);
    ("micro-pool", micro_pool);
    ("micro-obsv", micro_obsv);
    ("micro-lanes", micro_lanes);
    ("micro-steal", micro_steal);
    ("micro-fault", micro_fault) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) artifacts
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name artifacts with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown artifact %S; available: %s\n" name
            (String.concat " " (List.map fst artifacts));
          exit 1)
      names
