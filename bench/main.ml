(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§VII), plus ablations. See DESIGN.md for the experiment
   index and EXPERIMENTS.md for paper-vs-measured results.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig9    # one artifact

   Artifacts: fig2 fig8 fig9 fig10 codegen ablation-chunk
   ablation-threads ablation-recovery micro micro-recovery
   micro-invert micro-pool micro-obsv micro-lanes micro-steal
   micro-fault micro-cache micro-jit micro-reduce micro-serve
   micro-chaos

   The micro-* artifacts additionally write machine-readable
   BENCH_recovery.json / BENCH_invert.json / BENCH_pool.json /
   BENCH_obsv.json / BENCH_lanes.json / BENCH_steal.json /
   BENCH_fault.json / BENCH_cache.json / BENCH_jit.json /
   BENCH_reduce.json / BENCH_serve.json / BENCH_chaos.json into the
   current directory (all through the shared Emit module, which stamps
   schema_version + git revision) so the hot-path perf trajectory can
   be tracked across PRs; micro-obsv also writes TRACE_obsv.json, a
   Chrome trace of an instrumented parallel run. micro-lanes,
   micro-steal, micro-fault, micro-cache, micro-jit and micro-serve
   honour BENCH_LANES_N / BENCH_STEAL_N / BENCH_FAULT_N /
   BENCH_CACHE_NESTS, BENCH_CACHE_REQS / BENCH_JIT_N, BENCH_JIT_LANES,
   BENCH_JIT_CHUNK / BENCH_SERVE_CLIENTS, BENCH_SERVE_REQS,
   BENCH_SERVE_WINDOW, BENCH_SERVE_TRIALS, BENCH_SERVE_NESTS for
   CI-sized runs; micro-invert honours BENCH_INVERT_N;
   micro-reduce honours BENCH_REDUCE_N,
   BENCH_REDUCE_SPIN, BENCH_REDUCE_SWEEP_N. micro-chaos (bench/chaos.ml)
   is the robustness harness: kill-9 mid-write, corrupt-store,
   wedged-cc and flooding-client scenarios with recovery gates,
   sized by BENCH_CHAOS_SEED, BENCH_CHAOS_TIMEOUT_MS,
   BENCH_CHAOS_VICTIM_REQS, BENCH_CHAOS_FLOOD_WINDOW,
   BENCH_CHAOS_RATE. *)

module K = Kernels.Kernel
module Sim = Ompsim.Sim
module Sched = Ompsim.Schedule

let threads = 12

let base_overheads =
  { Sim.fork_join = Ompsim.Calibrate.default_fork_join;
    dispatch = Ompsim.Calibrate.default_dispatch;
    chunk_start = 0.0;
    per_iter = 0.0 }

let collapsed_overheads =
  { base_overheads with
    chunk_start = Ompsim.Calibrate.default_recovery;
    per_iter = Ompsim.Calibrate.default_increment }

let naive_overheads =
  (* closed-form recovery at every iteration (paper Fig. 3 shape) *)
  { base_overheads with per_iter = Ompsim.Calibrate.default_recovery }

let header title =
  Printf.printf "\n==================== %s ====================\n" title

(* ---------------- Figure 2 ---------------- *)

let fig2 () =
  header "Figure 2: static distribution of the correlation triangle over 5 threads";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let n = 1000 in
  let rows = k.K.outer_costs ~n in
  let blocks = Sched.static_blocks ~nthreads:5 ~n:(Array.length rows) in
  let total = Array.fold_left ( +. ) 0.0 rows in
  Printf.printf "correlation N=%d, schedule(static) on the outer i-loop:\n" n;
  Array.iteri
    (fun t (start, len) ->
      let work = ref 0.0 in
      for q = start to start + len - 1 do
        work := !work +. rows.(q)
      done;
      Printf.printf
        "  thread %d: rows %4d..%4d  work %12.0f  (%.1f%% of total, %.2fx fair share)\n" t start
        (start + len - 1) !work
        (100.0 *. !work /. total)
        (!work /. (total /. 5.0)))
    blocks;
  let coll = k.K.collapsed_costs ~n in
  let cblocks = Sched.static_blocks ~nthreads:5 ~n:(Array.length coll) in
  Printf.printf "after collapsing (pc-loop, schedule(static)):\n";
  Array.iteri
    (fun t (start, len) ->
      let work = ref 0.0 in
      for q = start to start + len - 1 do
        work := !work +. coll.(q)
      done;
      Printf.printf "  thread %d: %7d iterations  work %12.0f  (%.2fx fair share)\n" t len !work
        (!work /. (total /. 5.0)))
    cblocks

(* ---------------- Figure 8 ---------------- *)

let fig6_nest () =
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  Trahrhe.Nest.make ~params:[ "N" ]
    [ { var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.minus_one };
      { var = "j"; lower = A.const Q.zero; upper = A.make [ ("i", Q.one) ] Q.one };
      { var = "k"; lower = A.var "j"; upper = A.make [ ("i", Q.one) ] Q.one } ]

let fig8 () =
  header "Figure 8: r(i,0,0) - pc for the 3-depth nest (parallel curves, N=10)";
  let inv = Trahrhe.Inversion.invert_exn (fig6_nest ()) in
  let r = inv.Trahrhe.Inversion.r_sub.(0) in
  let steps = List.init 12 (fun s -> -2.5 +. (0.5 *. float_of_int s)) in
  Printf.printf "%8s" "i:";
  List.iter (fun x -> Printf.printf "%8.1f" x) steps;
  print_newline ();
  for pc = 1 to 10 do
    Printf.printf "pc=%4d:" pc;
    List.iter
      (fun x ->
        let v =
          Polymath.Polynomial.eval_float (function "i" -> x | _ -> 10.0) r -. float_of_int pc
        in
        Printf.printf "%8.2f" v)
      steps;
    print_newline ()
  done

(* ---------------- Figure 9 ---------------- *)

let fig9 () =
  header "Figure 9: gains of collapsing, 12 threads (simulated makespans, work units)";
  Printf.printf "%-18s %8s %12s %12s %12s %12s %9s %9s\n" "kernel" "n" "static" "dynamic" "guided"
    "collapsed" "g_static" "g_dynamic";
  List.iter
    (fun (k : K.t) ->
      let n = k.K.default_n in
      let outer = k.K.outer_costs ~n in
      let coll = k.K.collapsed_costs ~n in
      let run costs sched ov =
        (Sim.run ~costs ~schedule:sched ~nthreads:threads ~overheads:ov).Sim.makespan
      in
      let ts = run outer Sched.Static base_overheads in
      let td = run outer (Sched.Dynamic 1) base_overheads in
      let tg = run outer (Sched.Guided 1) base_overheads in
      let tc = run coll Sched.Static collapsed_overheads in
      Printf.printf "%-18s %8d %12.3e %12.3e %12.3e %12.3e %8.1f%% %8.1f%%\n" k.K.name n ts td tg
        tc
        (100.0 *. Sim.gain ~baseline:ts ~improved:tc)
        (100.0 *. Sim.gain ~baseline:td ~improved:tc))
    Kernels.Registry.kernels;
  print_endline "(gain = (t_without - t_with)/t_without, as in the paper)"

(* ---------------- Figure 10 ---------------- *)

let fig10 () =
  header "Figure 10: serial control overhead of 12 root evaluations (native wall-clock)";
  Printf.printf "%-18s %8s %12s %12s %10s  %s\n" "kernel" "n" "original(s)" "collapsed(s)"
    "overhead" "checksum";
  List.iter
    (fun (k : K.t) ->
      let n = k.K.fig10_n in
      let o_sum = ref 0.0 and c_sum = ref 0.0 in
      let t_orig =
        Ompsim.Calibrate.time_best ~reps:3 (fun () -> o_sum := k.K.serial_original ~n)
      in
      let t_coll =
        Ompsim.Calibrate.time_best ~reps:3 (fun () ->
            c_sum := k.K.serial_collapsed ~n ~recoveries:12)
      in
      let same = Float.abs (!o_sum -. !c_sum) <= 1e-9 *. Float.max 1.0 (Float.abs !o_sum) in
      Printf.printf "%-18s %8d %12.4f %12.4f %9.2f%%  %s\n" k.K.name n t_orig t_coll
        (100.0 *. (t_coll -. t_orig) /. t_orig)
        (if same then "ok" else "MISMATCH"))
    Kernels.Registry.kernels

(* ---------------- generated code (Figures 3, 4, 7) ---------------- *)

let codegen () =
  header "Figures 3/4/7: generated collapsed OpenMP C";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let inv = K.inversion k in
  let body =
    [ Codegen.C_ast.Raw "for (k = 0; k < N; k++) a[i][j] += b[k][i] * c[k][j];";
      Codegen.C_ast.Raw "a[j][i] = a[i][j];" ]
  in
  let config = { Codegen.Schemes.default_config with extra_private = [ "k" ] } in
  print_endline "--- Figure 3 (naive) ---";
  print_string (Codegen.C_print.to_string (Codegen.Schemes.naive ~config inv ~body));
  print_endline "--- Figure 4 (per-thread recovery) ---";
  print_string (Codegen.C_print.to_string (Codegen.Schemes.per_thread ~config inv ~body));
  let inv3 = Trahrhe.Inversion.invert_exn (fig6_nest ()) in
  print_endline "--- Figure 7 (3-depth nest, complex recovery) ---";
  print_string
    (Codegen.C_print.to_string
       (Codegen.Schemes.naive inv3 ~body:[ Codegen.C_ast.Raw "S(i, j, k);" ]))

(* ---------------- ablations ---------------- *)

let ablation_chunk () =
  header "Ablation A1: chunk size of the chunked recovery scheme (correlation, 12 threads)";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let n = k.K.default_n in
  let coll = k.K.collapsed_costs ~n in
  Printf.printf "%10s %12s %12s %10s\n" "chunk" "makespan" "chunks" "imbalance";
  List.iter
    (fun chunk ->
      let r =
        Sim.run ~costs:coll ~schedule:(Sched.Static_chunk chunk) ~nthreads:threads
          ~overheads:collapsed_overheads
      in
      Printf.printf "%10d %12.3e %12d %10.3f\n" chunk r.Sim.makespan r.Sim.chunks_dispatched
        r.Sim.imbalance)
    [ 16; 64; 256; 1024; 4096; 16384; 65536 ];
  let r =
    Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:threads ~overheads:collapsed_overheads
  in
  Printf.printf "%10s %12.3e %12d %10.3f\n" "static" r.Sim.makespan r.Sim.chunks_dispatched
    r.Sim.imbalance

let ablation_threads () =
  header "Ablation A2: thread scaling (gain of collapsed+static vs originals)";
  List.iter
    (fun name ->
      let k = Option.get (Kernels.Registry.find name) in
      let n = k.K.default_n in
      Printf.printf "%s (n=%d):\n%8s %12s %12s %12s %9s %9s\n" name n "threads" "static" "dynamic"
        "collapsed" "g_static" "g_dyn";
      List.iter
        (fun t ->
          let outer = k.K.outer_costs ~n and coll = k.K.collapsed_costs ~n in
          let ts =
            (Sim.run ~costs:outer ~schedule:Sched.Static ~nthreads:t ~overheads:base_overheads)
              .Sim.makespan
          in
          let td =
            (Sim.run ~costs:outer ~schedule:(Sched.Dynamic 1) ~nthreads:t
               ~overheads:base_overheads)
              .Sim.makespan
          in
          let tc =
            (Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:t
               ~overheads:collapsed_overheads)
              .Sim.makespan
          in
          Printf.printf "%8d %12.3e %12.3e %12.3e %8.1f%% %8.1f%%\n" t ts td tc
            (100.0 *. Sim.gain ~baseline:ts ~improved:tc)
            (100.0 *. Sim.gain ~baseline:td ~improved:tc))
        [ 2; 4; 8; 12; 24; 48; 96 ])
    [ "correlation"; "ltmp"; "fdtd_skewed" ]

let ablation_recovery () =
  header "Ablation A3: index recovery strategies";
  Printf.printf "%-18s %14s %14s %14s   %s\n" "kernel" "closed(ns)" "guarded(ns)" "binsearch(ns)"
    "naive-scheme makespan penalty";
  List.iter
    (fun (k : K.t) ->
      let n = max 64 (k.K.fig10_n / 2) in
      let rc = K.recovery k ~n in
      let trip = Trahrhe.Recovery.trip_count rc in
      let reps = 20_000 in
      let time_ns f =
        let t0 = Unix.gettimeofday () in
        let sink = ref 0 in
        for q = 1 to reps do
          let pc = 1 + (q * 7919 mod trip) in
          sink := !sink + (f pc).(0)
        done;
        ignore !sink;
        (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
      in
      let closed = time_ns (Trahrhe.Recovery.recover rc) in
      let guarded = time_ns (Trahrhe.Recovery.recover_guarded rc) in
      let binsearch = time_ns (Trahrhe.Recovery.recover_binsearch rc) in
      let coll = k.K.collapsed_costs ~n:k.K.default_n in
      let t_naive =
        (Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:threads ~overheads:naive_overheads)
          .Sim.makespan
      in
      let t_pt =
        (Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:threads
           ~overheads:collapsed_overheads)
          .Sim.makespan
      in
      Printf.printf "%-18s %14.0f %14.0f %14.0f   +%.1f%%\n" k.K.name closed guarded binsearch
        (100.0 *. ((t_naive /. t_pt) -. 1.0)))
    Kernels.Registry.kernels

let ablation_gpu () =
  header "Ablation A4: GPU warp mapping (§VI-B cost model, correlation)";
  let k = Option.get (Kernels.Registry.find "correlation") in
  let n = 600 in
  let coll = k.K.collapsed_costs ~n in
  let total = Array.length coll in
  (* row-major address of the (i,j) element touched by each collapsed
     iteration: walk the triangle once to record them *)
  let addresses = Array.make total 0 in
  let rc = K.recovery k ~n in
  let idx = Trahrhe.Recovery.first rc in
  for q = 0 to total - 1 do
    addresses.(q) <- (idx.(0) * n) + idx.(1);
    if q < total - 1 then ignore (Trahrhe.Recovery.increment rc idx)
  done;
  Printf.printf "%12s %10s %12s %14s %12s\n" "mapping" "warp" "compute" "transactions" "time";
  List.iter
    (fun (name, mapping) ->
      List.iter
        (fun warp ->
          let r =
            Ompsim.Gpu.run ~n:total ~warp ~mapping
              ~cost:(fun q -> coll.(q) /. float_of_int n)
              ~address:(fun q -> addresses.(q))
              ~line:16 ~transaction_cost:8.0
          in
          Printf.printf "%12s %10d %12.3e %14d %12.3e\n" name warp r.Ompsim.Gpu.compute
            r.Ompsim.Gpu.transactions r.Ompsim.Gpu.time)
        [ 16; 32; 64 ])
    [ ("coalesced", Ompsim.Gpu.Coalesced); ("blocked", Ompsim.Gpu.Blocked) ];
  print_endline "(coalesced = the paper's consecutive-rank-per-warp distribution)"

let ablation_simd () =
  header "Ablation A5: SIMD vectorization of the collapsed loop (§VI-A model)";
  Printf.printf "%-18s %8s %12s %12s %10s\n" "kernel" "vlength" "scalar" "vector" "speedup";
  List.iter
    (fun name ->
      let k = Option.get (Kernels.Registry.find name) in
      let costs = k.K.collapsed_costs ~n:(max 16 (k.K.default_n / 4)) in
      (* per-lane work normalized to one unit so vlength lanes of the
         inner loop vectorize; fill = one tuple store + §V increment *)
      let unit = Array.map (fun c -> c /. Float.max 1.0 c) costs in
      List.iter
        (fun vlength ->
          let r = Ompsim.Simd.run ~costs:unit ~vlength ~fill:0.06 in
          Printf.printf "%-18s %8d %12.3e %12.3e %9.2fx\n" name vlength r.Ompsim.Simd.scalar_time
            r.Ompsim.Simd.vector_time r.Ompsim.Simd.speedup)
        [ 2; 4; 8; 16 ])
    [ "utma"; "dynprog" ]

(* ---------------- bechamel micro-benchmarks ---------------- *)

let micro () =
  header "Micro-benchmarks (bechamel, ns/run)";
  let open Bechamel in
  let open Toolkit in
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let rc = K.recovery corr ~n:2000 in
  let trip = Trahrhe.Recovery.trip_count rc in
  let symm = Option.get (Kernels.Registry.find "symm") in
  let rc3 = K.recovery symm ~n:100 in
  let trip3 = Trahrhe.Recovery.trip_count rc3 in
  let big_a = Zmath.Bigint.of_string "123456789012345678901234567890123456789" in
  let big_b = Zmath.Bigint.of_string "987654321098765432109876543210987654321" in
  let ranking = (K.inversion corr).Trahrhe.Inversion.ranking in
  let counter = ref 0 in
  let next_pc t =
    counter := (!counter + 7919) mod t;
    1 + !counter
  in
  let costs = corr.K.collapsed_costs ~n:500 in
  let rows = corr.K.outer_costs ~n:500 in
  let idx = Trahrhe.Recovery.first rc in
  let tests =
    [ Test.make ~name:"recover_closed_deg2"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover rc (next_pc trip)));
      Test.make ~name:"recover_guarded_deg2"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover_guarded rc (next_pc trip)));
      Test.make ~name:"recover_binsearch_deg2"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover_binsearch rc (next_pc trip)));
      Test.make ~name:"recover_closed_deg3"
        (Staged.stage (fun () -> Trahrhe.Recovery.recover rc3 (next_pc trip3)));
      Test.make ~name:"rank_eval_exact"
        (Staged.stage (fun () -> Trahrhe.Recovery.rank rc [| 100; 200 |]));
      Test.make ~name:"increment"
        (Staged.stage (fun () ->
             if not (Trahrhe.Recovery.increment rc idx) then begin
               idx.(0) <- 0;
               idx.(1) <- 1
             end));
      Test.make ~name:"bigint_mul_128bit" (Staged.stage (fun () -> Zmath.Bigint.mul big_a big_b));
      Test.make ~name:"poly_mul_ranking^2"
        (Staged.stage (fun () -> Polymath.Polynomial.mul ranking ranking));
      Test.make ~name:"invert_correlation"
        (Staged.stage (fun () -> Trahrhe.Inversion.invert_exn corr.K.nest));
      Test.make ~name:"sim_static_125k"
        (Staged.stage (fun () ->
             Sim.run ~costs ~schedule:Sched.Static ~nthreads:12 ~overheads:collapsed_overheads));
      Test.make ~name:"sim_dynamic_500rows"
        (Staged.stage (fun () ->
             Sim.run ~costs:rows ~schedule:(Sched.Dynamic 1) ~nthreads:12
               ~overheads:base_overheads)) ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"micro" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let entries =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some [ est ] -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Printf.printf "  %-36s %12.1f ns/run\n" name est) entries

(* ---------------- hot-path engine artifacts (JSON-emitting) ---------------- *)

(* every BENCH_*.json goes through the shared Emit module, which stamps
   the artifact schema version and the git revision in one place so the
   perf trajectory across PRs stays attributable *)

(* per-iteration cost of the strategies for executing a collapsed
   chunk: full recovery each iteration (the naive scheme), §V
   incrementation with per-step polynomial re-evaluation of the bounds
   (flat-term and Horner pipelines), and the compiled walk whose carries
   advance the bounds by finite-difference tables *)
let micro_recovery () =
  header "micro-recovery: ns/iter walking the collapsed correlation nest (N=1000)";
  Emit.ensure_writable "BENCH_recovery.json";
  let n = 1000 in
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let inv = K.inversion corr in
  let rc = K.recovery corr ~n in
  let rc_flat = Trahrhe.Recovery.make ~compiled:false inv ~param:(K.param_of corr ~n) in
  let trip = Trahrhe.Recovery.trip_count rc in
  let sink = ref 0 in
  let time_ns f =
    let s = Ompsim.Calibrate.time_best ~reps:3 f in
    s *. 1e9 /. float_of_int trip
  in
  let recover_each =
    time_ns (fun () ->
        for pc = 1 to trip do
          sink := !sink + (Trahrhe.Recovery.recover_guarded rc pc).(0)
        done)
  in
  let increment_with rc =
    time_ns (fun () ->
        let idx = Trahrhe.Recovery.first rc in
        for _ = 1 to trip do
          sink := !sink + idx.(0);
          ignore (Trahrhe.Recovery.increment rc idx)
        done)
  in
  let increment_flat = increment_with rc_flat in
  let increment_horner = increment_with rc in
  let fdiff_walk =
    time_ns (fun () -> Trahrhe.Recovery.walk rc ~pc:1 ~len:trip (fun idx -> sink := !sink + idx.(0)))
  in
  ignore !sink;
  Printf.printf "%-54s %10s\n" "strategy" "ns/iter";
  List.iter
    (fun (name, ns) -> Printf.printf "%-54s %10.1f\n" name ns)
    [ ("guarded closed-form recovery at every iteration", recover_each);
      ("§V increment, flat-term bound re-evaluation", increment_flat);
      ("§V increment, Horner bound re-evaluation", increment_horner);
      ("compiled walk, finite-difference bound stepping", fdiff_walk) ];
  Printf.printf "walk vs re-evaluating increment: %.1fx; walk vs naive recovery: %.1fx\n"
    (increment_horner /. fdiff_walk)
    (recover_each /. fdiff_walk);
  Emit.write ~path:"BENCH_recovery.json" ~artifact:"micro-recovery"
    [ ("kernel", Emit.Str "correlation");
      ("n", Emit.Int n);
      ("iterations", Emit.Int trip);
      ( "ns_per_iter",
        Emit.Obj
          [ ("recover_each", Emit.F (recover_each, 2));
            ("increment_flat_terms", Emit.F (increment_flat, 2));
            ("increment_horner", Emit.F (increment_horner, 2));
            ("fdiff_walk", Emit.F (fdiff_walk, 2))
          ] );
      ( "speedup",
        Emit.Obj
          [ ("walk_vs_increment_horner", Emit.F (increment_horner /. fdiff_walk, 3));
            ("walk_vs_recover_each", Emit.F (recover_each /. fdiff_walk, 3));
            ("horner_vs_flat_increment", Emit.F (increment_flat /. increment_horner, 3))
          ] )
    ]

(* per-region overhead of the real executor: warm pool dispatch vs
   spawning fresh domains per parallel region *)
let micro_pool () =
  header "micro-pool: per-region overhead of Par.parallel_for (ns/call)";
  Emit.ensure_writable "BENCH_pool.json";
  let thread_counts = [ 2; 4; 8 ] in
  let measure backend nthreads =
    Ompsim.Calibrate.measure_region_overhead ~calls:200 ~backend ~nthreads ()
  in
  Printf.printf "%10s %14s %14s %10s\n" "nthreads" "spawn(ns)" "pool(ns)" "ratio";
  let rows =
    List.map
      (fun nthreads ->
        let spawn = measure Ompsim.Par.Spawn nthreads in
        let pool = measure Ompsim.Par.Pool nthreads in
        Printf.printf "%10d %14.0f %14.0f %9.1fx\n" nthreads spawn pool (spawn /. pool);
        (nthreads, spawn, pool))
      thread_counts
  in
  Emit.write ~path:"BENCH_pool.json" ~artifact:"micro-pool"
    [ ("calls_per_measurement", Emit.Int 200);
      ("pool_workers_alive", Emit.Int (Ompsim.Pool.size ()));
      ( "regions",
        Emit.Arr
          (List.map
             (fun (nthreads, spawn, pool) ->
               Emit.Obj
                 [ ("nthreads", Emit.Int nthreads);
                   ("spawn_ns", Emit.F (spawn, 0));
                   ("pool_ns", Emit.F (pool, 0));
                   ("spawn_over_pool", Emit.F (spawn /. pool, 3))
                 ])
             rows) )
    ]

(* overhead and imbalance of the observability layer itself: the §V
   walk loop with instrumentation absent / disabled / enabled, then a
   real instrumented parallel execution whose per-worker counters give
   the imbalance histogram; also emits TRACE_obsv.json for CI's
   Chrome-trace validation *)
let micro_obsv () =
  header "micro-obsv: observability overhead on the walk loop (correlation, N=1000)";
  Emit.ensure_writable "BENCH_obsv.json";
  Emit.ensure_writable "TRACE_obsv.json";
  let n = 1000 in
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let rc = K.recovery corr ~n in
  let trip = Trahrhe.Recovery.trip_count rc in
  let chunk = 512 in
  let sink = ref 0 in
  let time_ns f =
    let s = Ompsim.Calibrate.time_best ~reps:5 f in
    s *. 1e9 /. float_of_int trip
  in
  let full walk () = walk rc ~pc:1 ~len:trip (fun idx -> sink := !sink + idx.(0)) in
  let chunked walk () =
    let start = ref 0 in
    while !start < trip do
      walk rc ~pc:(!start + 1)
        ~len:(min chunk (trip - !start))
        (fun idx -> sink := !sink + idx.(0));
      start := !start + chunk
    done
  in
  Obsv.Control.set_enabled false;
  let bare_full = time_ns (full Trahrhe.Recovery.walk_uninstrumented) in
  let bare_chunked = time_ns (chunked Trahrhe.Recovery.walk_uninstrumented) in
  let disabled_full = time_ns (full Trahrhe.Recovery.walk) in
  let disabled_chunked = time_ns (chunked Trahrhe.Recovery.walk) in
  let enabled_chunked =
    Obsv.Control.with_enabled true (fun () -> time_ns (chunked Trahrhe.Recovery.walk))
  in
  ignore !sink;
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  let pct over base = 100.0 *. ((over -. base) /. base) in
  Printf.printf "%-46s %10s\n" "variant" "ns/iter";
  List.iter
    (fun (name, ns) -> Printf.printf "%-46s %10.2f\n" name ns)
    [ ("walk_uninstrumented, one chunk", bare_full);
      ("walk_uninstrumented, 512-chunks", bare_chunked);
      ("walk, obsv disabled, one chunk", disabled_full);
      ("walk, obsv disabled, 512-chunks", disabled_chunked);
      ("walk, obsv enabled, 512-chunks", enabled_chunked) ];
  Printf.printf "disabled overhead: %+.2f%% (one chunk), %+.2f%% (512-chunks); enabled tracing: %+.2f%%\n"
    (pct disabled_full bare_full) (pct disabled_chunked bare_chunked)
    (pct enabled_chunked bare_chunked);
  (* instrumented parallel runs: per-worker chunk/iteration histogram *)
  let nthreads = 4 in
  let parallel_section schedule =
    Ompsim.Stats.reset ();
    Ompsim.Par.parallel_for_chunks ~nthreads ~schedule ~n:trip (fun ~thread:_ ~start ~len ->
        Trahrhe.Recovery.walk rc ~pc:(start + 1) ~len (fun idx -> sink := !sink + idx.(0)));
    let per_worker =
      Obsv.Metrics.per_slot Ompsim.Stats.par_iterations
      |> List.map (fun (slot, iters) ->
             Emit.Obj
               [ ("slot", Emit.Int slot);
                 ("chunks", Emit.Int (Obsv.Metrics.get Ompsim.Stats.par_chunks ~slot));
                 ("iterations", Emit.Int iters)
               ])
    in
    let imb = Obsv.Metrics.imbalance Ompsim.Stats.par_iterations in
    Printf.printf "  %-14s imbalance (max/mean iterations per worker): %.3f\n"
      (Sched.to_string schedule) imb;
    Ompsim.Stats.emit_trace_counters ();
    Emit.Obj
      [ ("schedule", Emit.Str (Sched.to_string schedule));
        ("nthreads", Emit.Int nthreads);
        ("imbalance", Emit.F (imb, 4));
        ("per_worker", Emit.Arr per_worker)
      ]
  in
  let sections =
    Obsv.Control.with_enabled true (fun () ->
        let s1 = parallel_section Sched.Static in
        let s2 = parallel_section (Sched.Dynamic chunk) in
        Obsv.Trace.write "TRACE_obsv.json";
        [ s1; s2 ])
  in
  Printf.printf "wrote TRACE_obsv.json (%d events)\n" (Obsv.Trace.event_count ());
  Emit.write ~path:"BENCH_obsv.json" ~artifact:"micro-obsv"
    [ ("kernel", Emit.Str "correlation");
      ("n", Emit.Int n);
      ("iterations", Emit.Int trip);
      ("chunk", Emit.Int chunk);
      ( "ns_per_iter",
        Emit.Obj
          [ ("walk_uninstrumented_full", Emit.F (bare_full, 2));
            ("walk_uninstrumented_chunked", Emit.F (bare_chunked, 2));
            ("walk_disabled_full", Emit.F (disabled_full, 2));
            ("walk_disabled_chunked", Emit.F (disabled_chunked, 2));
            ("walk_enabled_chunked", Emit.F (enabled_chunked, 2))
          ] );
      ( "overhead_pct",
        Emit.Obj
          [ ("disabled_full", Emit.F (pct disabled_full bare_full, 3));
            ("disabled_chunked", Emit.F (pct disabled_chunked bare_chunked, 3));
            ("enabled_chunked", Emit.F (pct enabled_chunked bare_chunked, 3))
          ] );
      ("parallel", Emit.Arr sections);
      ("trace_events", Emit.Int (Obsv.Trace.event_count ()))
    ]

(* positive integer from the environment, for CI to shrink the bench
   sizes without patching the source *)
let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

(* §VI-A batched lane-walk vs the per-iteration walk callback: same
   kernel, same chunking, the body reduced to one add per iteration so
   the difference is pure delivery mechanism (closure call per
   iteration vs Array.fill runs + one closure call per block) *)
let micro_lanes () =
  let n = env_int "BENCH_LANES_N" 1000 in
  header (Printf.sprintf "micro-lanes: walk vs walk_lanes ns/iter (correlation, N=%d)" n);
  Emit.ensure_writable "BENCH_lanes.json";
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let rc = K.recovery corr ~n in
  let trip = Trahrhe.Recovery.trip_count rc in
  let chunk = min trip 4096 in
  let sink = ref 0 in
  let time_ns f =
    let s = Ompsim.Calibrate.time_best ~reps:5 f in
    s *. 1e9 /. float_of_int trip
  in
  let chunked per_chunk () =
    let start = ref 0 in
    while !start < trip do
      per_chunk ~pc:(!start + 1) ~len:(min chunk (trip - !start));
      start := !start + chunk
    done
  in
  let walk_ns =
    time_ns
      (chunked (fun ~pc ~len ->
           Trahrhe.Recovery.walk rc ~pc ~len (fun idx -> sink := !sink + idx.(0))))
  in
  let lanes_ns vlength =
    time_ns
      (chunked (fun ~pc ~len ->
           Trahrhe.Recovery.walk_lanes rc ~pc ~len ~vlength (fun ~base:_ ~count lanes ->
               let row = lanes.(0) in
               let acc = ref 0 in
               for l = 0 to count - 1 do
                 acc := !acc + row.(l)
               done;
               sink := !sink + !acc)))
  in
  let vlengths = [ 1; 4; 8; 16; 32 ] in
  let rows = List.map (fun v -> (v, lanes_ns v)) vlengths in
  ignore !sink;
  Printf.printf "%-40s %10s %9s\n" "variant" "ns/iter" "vs walk";
  Printf.printf "%-40s %10.2f %9s\n" "walk, per-iteration callback" walk_ns "1.00x";
  List.iter
    (fun (v, ns) ->
      Printf.printf "%-40s %10.2f %8.2fx\n"
        (Printf.sprintf "walk_lanes, vlength %d" v)
        ns (walk_ns /. ns))
    rows;
  Emit.write ~path:"BENCH_lanes.json" ~artifact:"micro-lanes"
    [ ("kernel", Emit.Str "correlation");
      ("n", Emit.Int n);
      ("iterations", Emit.Int trip);
      ("chunk", Emit.Int chunk);
      ("walk_ns_per_iter", Emit.F (walk_ns, 2));
      ( "lanes",
        Emit.Arr
          (List.map
             (fun (v, ns) ->
               Emit.Obj
                 [ ("vlength", Emit.Int v);
                   ("ns_per_iter", Emit.F (ns, 2));
                   ("speedup_vs_walk", Emit.F (walk_ns /. ns, 3))
                 ])
             rows) );
      ( "speedup",
        Emit.Obj
          [ ("vlength_8_vs_walk", Emit.F (walk_ns /. List.assoc 8 rows, 3));
            ("vlength_32_vs_walk", Emit.F (walk_ns /. List.assoc 32 rows, 3))
          ] )
    ]

(* scheduling-overhead shootout on a skewed-cost workload: a central
   mutex-protected chunk queue (the textbook dynamic scheduler), the
   atomic fetch-add Dynamic dispatcher, and the Chase-Lev work-stealing
   deques — followed by an instrumented run whose steal counters must
   reconcile exactly against the ground-truth chunk count *)
let micro_steal () =
  let n = env_int "BENCH_STEAL_N" 200_000 in
  header (Printf.sprintf "micro-steal: scheduler overhead on %d skewed iterations" n);
  Emit.ensure_writable "BENCH_steal.json";
  (* default 2 workers: the schedulers are compared under modest
     oversubscription — with many more domains than cores the run is
     dominated by OS descheduling (a parked owner strands its claimed
     batch), which measures the kernel's scheduler, not ours *)
  let nthreads = env_int "BENCH_STEAL_T" 2 in
  let chunk = env_int "BENCH_STEAL_CHUNK" 8 in
  let skew = 64 in
  let stride = 16 in
  let partial = Array.make (nthreads * stride) 0 in
  (* triangular per-iteration cost, like a collapsed triangular nest's
     rows: iteration q spins ~q*skew/n times, so the tail chunks cost
     skew spins while the head chunks cost none and rebalancing
     matters *)
  let do_chunk thread start len =
    let cell = thread * stride in
    let acc = ref 0 in
    for q = start to start + len - 1 do
      let spins = q * skew / n in
      let r = ref 0 in
      for _ = 1 to spins do
        incr r
      done;
      acc := !acc + !r
    done;
    partial.(cell) <- partial.(cell) + !acc
  in
  let reset () = Array.fill partial 0 (Array.length partial) 0 in
  let run_mutex () =
    reset ();
    let next = ref 0 in
    let m = Mutex.create () in
    Ompsim.Pool.run ~nthreads (fun t ->
        let live = ref true in
        while !live do
          Mutex.lock m;
          let s = !next in
          if s >= n then begin
            Mutex.unlock m;
            live := false
          end
          else begin
            next := s + chunk;
            Mutex.unlock m;
            do_chunk t s (min chunk (n - s))
          end
        done)
  in
  let run_sched schedule () =
    reset ();
    Ompsim.Par.parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread ~start ~len ->
        do_chunk thread start len)
  in
  (* interleave the contenders within every rep round so CPU frequency
     drift between measurements biases none of them; keep the per-
     scheduler minimum, as time_best would *)
  let runners = [| run_mutex; run_sched (Sched.Dynamic chunk); run_sched (Sched.Work_stealing chunk) |] in
  let best = Array.make (Array.length runners) infinity in
  let rounds = env_int "BENCH_STEAL_ROUNDS" 15 in
  Array.iter (fun f -> f ()) runners (* warm pool, deque cache, page tables *);
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        f ();
        best.(i) <- Float.min best.(i) ((Unix.gettimeofday () -. t0) *. 1e3))
      runners
  done;
  let t_mutex = best.(0) and t_dyn = best.(1) and t_ws = best.(2) in
  Printf.printf "%-38s %10s %9s\n" "scheduler" "ms" "vs mutex";
  List.iter
    (fun (name, t) -> Printf.printf "%-38s %10.2f %8.2fx\n" name t (t_mutex /. t))
    [ ("central mutex queue", t_mutex);
      ("atomic fetch-add dynamic", t_dyn);
      ("work-stealing deques", t_ws) ];
  (* counter reconciliation: every dealt chunk is popped locally or
     stolen, exactly once *)
  let truth = (n + chunk - 1) / chunk in
  let pops, steals, retries, par_chunks =
    Obsv.Control.with_enabled true (fun () ->
        Ompsim.Stats.reset ();
        run_sched (Sched.Work_stealing chunk) ();
        ( Obsv.Metrics.total Ompsim.Stats.ws_local_pops,
          Obsv.Metrics.total Ompsim.Stats.ws_steals,
          Obsv.Metrics.total Ompsim.Stats.ws_steal_retries,
          Obsv.Metrics.total Ompsim.Stats.par_chunks ))
  in
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  let reconciled = pops + steals = truth && par_chunks = truth in
  Printf.printf
    "ws counters: %d local pops + %d steals = %d (ground truth %d chunks, %d CAS retries) %s\n"
    pops steals (pops + steals) truth retries
    (if reconciled then "ok" else "MISMATCH");
  Emit.write ~path:"BENCH_steal.json" ~artifact:"micro-steal"
    [ ("n", Emit.Int n);
      ("chunk", Emit.Int chunk);
      ("nthreads", Emit.Int nthreads);
      ("skew", Emit.Int skew);
      ("ground_truth_chunks", Emit.Int truth);
      ( "time_ms",
        Emit.Obj
          [ ("mutex_queue", Emit.F (t_mutex, 3));
            ("dynamic_atomic", Emit.F (t_dyn, 3));
            ("work_stealing", Emit.F (t_ws, 3))
          ] );
      ( "speedup",
        Emit.Obj
          [ ("ws_vs_mutex", Emit.F (t_mutex /. t_ws, 3));
            ("ws_vs_dynamic", Emit.F (t_dyn /. t_ws, 3))
          ] );
      ( "counters",
        Emit.Obj
          [ ("local_pops", Emit.Int pops);
            ("steals", Emit.Int steals);
            ("steal_retries", Emit.Int retries);
            ("pops_plus_steals", Emit.Int (pops + steals));
            ("par_chunks", Emit.Int par_chunks);
            ("reconciled", Emit.Bool reconciled)
          ] )
    ]

(* micro-fault: cost of the fault-tolerance layer. Two questions:
   (1) what does supervision cost when nothing ever fails — the
   per-chunk cancellation check, success bookkeeping and the Result
   plumbing of [run_resilient] vs the plain path (must be within
   noise at realistic chunk sizes); (2) how does recovery latency grow
   with the injected fault rate, and do the fault counters reconcile
   with an exact checksum at every rate. *)
let micro_fault () =
  let n = env_int "BENCH_FAULT_N" 200_000 in
  header (Printf.sprintf "micro-fault: supervision overhead + recovery latency on %d iterations" n);
  Emit.ensure_writable "BENCH_fault.json";
  let nthreads = env_int "BENCH_FAULT_T" 2 in
  let chunk = env_int "BENCH_FAULT_CHUNK" 64 in
  let retries = 2 in
  let schedule = Sched.Dynamic chunk in
  let stride = 16 in
  let partial = Array.make (nthreads * stride) 0 in
  let do_chunk thread start len =
    let cell = thread * stride in
    let acc = ref 0 in
    for q = start to start + len - 1 do
      acc := !acc + q
    done;
    partial.(cell) <- partial.(cell) + !acc
  in
  let reset () = Array.fill partial 0 (Array.length partial) 0 in
  let checksum () =
    let s = ref 0 in
    for t = 0 to nthreads - 1 do
      s := !s + partial.(t * stride)
    done;
    !s
  in
  let expected = n * (n - 1) / 2 in
  let run_plain () =
    reset ();
    Ompsim.Par.parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread ~start ~len ->
        do_chunk thread start len)
  in
  let run_resilient ?(retries = 0) faults () =
    reset ();
    (* ~faults:(Some cfg) arms this region only; ~faults:None
       suppresses even an OMPSIM_FAULTS env spec, so the no-fault
       measurement is honest in a faulted CI job *)
    match
      Ompsim.Par.run_resilient ~retries ~faults ~nthreads ~schedule ~n (fun ~thread ~start ~len ->
          do_chunk thread start len)
    with
    | Ok () -> ()
    | Error e -> failwith (Ompsim.Par.describe_error e)
  in
  (* (1) interleaved rounds, keep per-contender minimum (as time_best
     would): supervision cost with no faults, no deadline, no retries *)
  let runners = [| run_plain; run_resilient None |] in
  let best = Array.make (Array.length runners) infinity in
  let rounds = env_int "BENCH_FAULT_ROUNDS" 15 in
  Array.iter (fun f -> f ()) runners (* warm pool and page tables *);
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        f ();
        best.(i) <- Float.min best.(i) ((Unix.gettimeofday () -. t0) *. 1e3))
      runners
  done;
  let t_plain = best.(0) and t_resilient = best.(1) in
  let overhead_pct = (t_resilient -. t_plain) /. t_plain *. 100.0 in
  let nchunks = (n + chunk - 1) / chunk in
  let ns_per_chunk = (t_resilient -. t_plain) *. 1e6 /. float_of_int nchunks in
  let ns_per_iter = (t_resilient -. t_plain) *. 1e6 /. float_of_int n in
  Printf.printf "%-38s %10.2f ms\n" "plain parallel_for_chunks" t_plain;
  Printf.printf "%-38s %10.2f ms  (%+.1f%%)\n" "run_resilient, faults disabled" t_resilient
    overhead_pct;
  (* the body above is an empty-weight sum, so the percentage is the
     worst case; the absolute cost is what a real kernel pays *)
  Printf.printf "%-38s %10.1f ns/chunk  (%.2f ns/iteration)\n" "supervision cost" ns_per_chunk
    ns_per_iter;
  (* (2) recovery latency and counter reconciliation vs fault rate *)
  let rates = [ 0.0; 0.02; 0.1; 0.3 ] in
  Printf.printf "%-38s %10s %9s %8s %10s %9s\n" "injected fault rate" "ms" "injected" "retries"
    "cancelled" "fallback";
  let all_ok = ref true in
  let rows =
    List.map
      (fun p ->
        let faults = Some { Ompsim.Fault.default with p; seed = 11 } in
        (* timing with the obsv layer off *)
        let t_ms =
          let best = ref infinity in
          for _ = 1 to 3 do
            let t0 = Unix.gettimeofday () in
            run_resilient ~retries faults ();
            best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1e3)
          done;
          !best
        in
        (* counters from one instrumented run of the same region *)
        let injected, retried, cancelled, fallbacks, iters =
          Obsv.Control.with_enabled true (fun () ->
              Ompsim.Stats.reset ();
              run_resilient ~retries faults ();
              ( Obsv.Metrics.total Ompsim.Stats.faults_injected,
                Obsv.Metrics.total Ompsim.Stats.chunk_retries,
                Obsv.Metrics.total Ompsim.Stats.regions_cancelled,
                Obsv.Metrics.total Ompsim.Stats.serial_fallbacks,
                Obsv.Metrics.total Ompsim.Stats.par_iterations ))
        in
        let sum_ok = checksum () = expected in
        let counters_ok =
          iters = n && retried <= injected
          && (p = 0.0) = (injected = 0)
          && (cancelled = 0 || fallbacks > 0 || injected > 0)
        in
        if not (sum_ok && counters_ok) then all_ok := false;
        Printf.printf "p=%-36g %10.2f %9d %8d %10d %9d %s\n" p t_ms injected retried cancelled
          fallbacks
          (if sum_ok then "ok" else "CHECKSUM MISMATCH");
        Emit.Obj
          [ ("p", Emit.G p);
            ("time_ms", Emit.F (t_ms, 3));
            ("injected", Emit.Int injected);
            ("retries", Emit.Int retried);
            ("cancelled", Emit.Int cancelled);
            ("serial_fallbacks", Emit.Int fallbacks);
            ("iterations", Emit.Int iters);
            ("checksum_ok", Emit.Bool sum_ok)
          ])
      rates
  in
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  Emit.write ~path:"BENCH_fault.json" ~artifact:"micro-fault"
    [ ("n", Emit.Int n);
      ("chunk", Emit.Int chunk);
      ("nthreads", Emit.Int nthreads);
      ("retries", Emit.Int retries);
      ( "supervision_overhead",
        Emit.Obj
          [ ("plain_ms", Emit.F (t_plain, 3));
            ("resilient_ms", Emit.F (t_resilient, 3));
            ("overhead_pct", Emit.F (overhead_pct, 2));
            ("overhead_ns_per_chunk", Emit.F (ns_per_chunk, 1));
            ("overhead_ns_per_iter", Emit.F (ns_per_iter, 3))
          ] );
      ("rates", Emit.Arr rows);
      ("reconciled", Emit.Bool !all_ok)
    ]

(* micro-cache: the compilation service's plan cache. Phases:
   (1) cold — compile BENCH_CACHE_NESTS distinct nests through an
   ample cache, timing the misses; (2) warm — re-request every nest,
   timing pure in-memory hits (the ISSUE acceptance wants warm >= 20x
   cold); (3) a Zipf-ish skewed workload against a deliberately
   undersized cache, with a per-request outcome log rebuilt from
   sequential stats deltas — the log must reconcile exactly against
   both the cache's always-on counters and the Obsv cache.* metrics;
   (4) single-flight — concurrent requests for one fresh fingerprint
   with an artificially slow compile must dedup to exactly one miss. *)
let micro_cache () =
  let nnests = env_int "BENCH_CACHE_NESTS" 32 in
  let reqs = env_int "BENCH_CACHE_REQS" 512 in
  header
    (Printf.sprintf "micro-cache: plan cache cold/warm latency, %d nests, %d skewed requests"
       nnests reqs);
  Emit.ensure_writable "BENCH_cache.json";
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  (* distinct triangular nests: the inner upper bound's constant offset
     varies, so every nest gets its own fingerprint but inversion always
     succeeds (depth 2) *)
  let nest_of_seed s =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = A.const Q.zero; upper = A.var "N" };
        { var = "j"; lower = A.var "i"; upper = A.make [ ("N", Q.one) ] (Q.of_int (1 + s)) } ]
  in
  let nests = Array.init nnests nest_of_seed in
  let time_ns f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let request cache nest =
    match Service.Cache.find_or_compile cache nest with
    | Ok _ -> ()
    | Error e -> failwith ("plan compile failed: " ^ e)
  in
  Obsv.Control.with_enabled true @@ fun () ->
  Ompsim.Stats.reset ();
  (* (1)+(2) cold misses then warm hits on an ample cache *)
  let ample = Service.Cache.create ~capacity:(2 * nnests) ~dir:None () in
  let cold_total = time_ns (fun () -> Array.iter (request ample) nests) in
  let warm_rounds = 5 in
  let warm_total =
    time_ns (fun () ->
        for _ = 1 to warm_rounds do
          Array.iter (request ample) nests
        done)
  in
  let cold_ns = cold_total /. float_of_int nnests in
  let warm_ns = warm_total /. float_of_int (warm_rounds * nnests) in
  let warm_speedup = cold_ns /. warm_ns in
  let ample_stats = Service.Cache.stats ample in
  Printf.printf "%-38s %12.0f ns\n" "cold compile (miss)" cold_ns;
  Printf.printf "%-38s %12.0f ns\n" "warm lookup (memory hit)" warm_ns;
  Printf.printf "%-38s %11.1fx\n" "warm speedup" warm_speedup;
  (* (3) Zipf-ish workload against an undersized cache: quadratically
     skewed toward nest 0, so popular plans stay resident and the tail
     churns through evictions; the outcome of every request is logged
     from the always-on stats deltas *)
  let small = Service.Cache.create ~capacity:(max 2 (nnests / 4)) ~dir:None () in
  let log_hits = ref 0 and log_misses = ref 0 and log_waits = ref 0 in
  let state = ref 12345 in
  let zipf_time =
    time_ns (fun () ->
        for _ = 1 to reqs do
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          let u = float_of_int !state /. 1073741824.0 in
          let idx = min (nnests - 1) (int_of_float (float_of_int nnests *. u *. u)) in
          let before = Service.Cache.stats small in
          request small nests.(idx);
          let after = Service.Cache.stats small in
          if after.Service.Cache.hits > before.Service.Cache.hits then incr log_hits
          else if after.Service.Cache.misses > before.Service.Cache.misses then incr log_misses
          else incr log_waits
        done)
  in
  let zs = Service.Cache.stats small in
  let hit_ratio = float_of_int zs.Service.Cache.hits /. float_of_int reqs in
  Printf.printf
    "zipf workload: %d requests, %d hits (%.1f%%), %d misses, %d evictions, %.0f ns/request\n" reqs
    zs.Service.Cache.hits (100.0 *. hit_ratio) zs.Service.Cache.misses
    zs.Service.Cache.evictions
    (zipf_time /. float_of_int reqs);
  (* (4) single-flight: 4 workers race for one fresh fingerprint whose
     compile is slowed enough that every follower arrives in time *)
  let sf = Service.Cache.create ~capacity:8 ~dir:None () in
  let sf_nest = nest_of_seed (nnests + 1) in
  let sf_workers = 4 in
  let slow_compile nest =
    Unix.sleepf 0.02;
    Service.Plan.compile nest
  in
  Ompsim.Pool.run ~nthreads:sf_workers (fun _ ->
      match Service.Cache.find_or_compile ~compile:slow_compile sf sf_nest with
      | Ok _ -> ()
      | Error e -> failwith ("single-flight compile failed: " ^ e));
  let ss = Service.Cache.stats sf in
  let dedup = ss.Service.Cache.singleflight_waits in
  Printf.printf "single-flight: %d concurrent requests -> %d compile, %d deduplicated\n" sf_workers
    ss.Service.Cache.misses dedup;
  (* reconciliation: request log vs always-on stats vs Obsv metrics *)
  let total_stats c =
    let s = Service.Cache.stats c in
    ( s.Service.Cache.hits,
      s.Service.Cache.misses,
      s.Service.Cache.singleflight_waits,
      s.Service.Cache.evictions )
  in
  let sum3 (a1, b1, c1, d1) (a2, b2, c2, d2) = (a1 + a2, b1 + b2, c1 + c2, d1 + d2) in
  let hits_all, misses_all, waits_all, evicts_all =
    List.fold_left sum3 (0, 0, 0, 0) (List.map total_stats [ ample; small; sf ])
  in
  let metric name =
    match Obsv.Metrics.find name with Some m -> Obsv.Metrics.total m | None -> -1
  in
  let log_ok =
    !log_hits = zs.Service.Cache.hits
    && !log_misses = zs.Service.Cache.misses
    && !log_waits = zs.Service.Cache.singleflight_waits
    && !log_hits + !log_misses + !log_waits = reqs
  in
  let obsv_ok =
    metric "cache.hit" = hits_all
    && metric "cache.miss" = misses_all
    && metric "cache.singleflight_wait" = waits_all
    && metric "cache.evict" = evicts_all
  in
  let sf_ok = ss.Service.Cache.misses = 1 && dedup = sf_workers - 1 in
  let ample_ok =
    ample_stats.Service.Cache.misses = nnests
    && ample_stats.Service.Cache.hits = warm_rounds * nnests
  in
  let reconciled = log_ok && obsv_ok && sf_ok && ample_ok in
  Printf.printf "counters reconcile (request log = cache stats = obsv cache.*): %s\n"
    (if reconciled then "ok" else "MISMATCH");
  (* snapshot the metric totals BEFORE the reset below zeroes them *)
  let m_hit = metric "cache.hit" in
  let m_miss = metric "cache.miss" in
  let m_evict = metric "cache.evict" in
  let m_wait = metric "cache.singleflight_wait" in
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  Emit.write ~path:"BENCH_cache.json" ~artifact:"micro-cache"
    [ ("nests", Emit.Int nnests);
      ("requests", Emit.Int reqs);
      ( "latency_ns",
        Emit.Obj
          [ ("cold_compile", Emit.F (cold_ns, 0));
            ("warm_hit", Emit.F (warm_ns, 0));
            ("zipf_per_request", Emit.F (zipf_time /. float_of_int reqs, 0))
          ] );
      ("warm_speedup", Emit.F (warm_speedup, 1));
      ("warm_speedup_ok", Emit.Bool (warm_speedup >= 20.0));
      ( "zipf",
        Emit.Obj
          [ ("capacity", Emit.Int (Service.Cache.capacity small));
            ("requests", Emit.Int reqs);
            ("hits", Emit.Int zs.Service.Cache.hits);
            ("misses", Emit.Int zs.Service.Cache.misses);
            ("evictions", Emit.Int zs.Service.Cache.evictions);
            ("hit_ratio", Emit.F (hit_ratio, 4))
          ] );
      ( "singleflight",
        Emit.Obj
          [ ("concurrent_requests", Emit.Int sf_workers);
            ("compiles", Emit.Int ss.Service.Cache.misses);
            ("deduplicated", Emit.Int dedup)
          ] );
      ( "request_log",
        Emit.Obj
          [ ("hits", Emit.Int !log_hits);
            ("misses", Emit.Int !log_misses);
            ("singleflight_waits", Emit.Int !log_waits)
          ] );
      ( "obsv_counters",
        Emit.Obj
          [ ("cache_hit", Emit.Int m_hit);
            ("cache_miss", Emit.Int m_miss);
            ("cache_evict", Emit.Int m_evict);
            ("cache_singleflight_wait", Emit.Int m_wait)
          ] );
      ("reconciled", Emit.Bool reconciled)
    ]

(* micro-jit: the native specialization tier. Phases: (1) chunked
   walk — the PR-1 exec workload — interpreted vs the specialized
   object's one-call-per-chunk walk_hash; (2) lane walk — the PR-3
   batched workload — interpreted materialization vs the object's
   block filler; (3) latencies: cold emit+gcc compile, warm dlopen of
   the published .so, and the cache-served steady state where the
   handle is already resident in the Service.Native tier; (4) a
   deliberate bigint-headroom fallback, reconciled against the
   jit.compile/jit.load/jit.fallback counters and the tier's own
   served/fallback stats. The headline gate is native >= 2x
   interpreted ns/iter on the chunked walk. *)
let micro_jit () =
  let n = env_int "BENCH_JIT_N" 1000 in
  let lanes = env_int "BENCH_JIT_LANES" 8 in
  let chunk = env_int "BENCH_JIT_CHUNK" 4096 in
  header (Printf.sprintf "micro-jit: interpreted vs native walk (correlation, N=%d)" n);
  Emit.ensure_writable "BENCH_jit.json";
  let module R = Trahrhe.Recovery in
  if not (Jit.Abi.available ()) then begin
    (* no C compiler: the tier falls back to the interpreted walk, so
       there is nothing to time — emit a recognizable artifact rather
       than failing the whole bench run *)
    Printf.printf "C compiler %S unavailable; native tier disabled, nothing to measure\n"
      (Jit.Abi.cc ());
    Emit.write ~path:"BENCH_jit.json" ~artifact:"micro-jit"
      [ ("compiler", Emit.Str (Jit.Abi.cc ()));
        ("compiler_available", Emit.Bool false);
        ("native_speedup_ok", Emit.Bool false);
        ("lanes_speedup_ok", Emit.Bool false)
      ]
  end
  else begin
    let corr = Option.get (Kernels.Registry.find "correlation") in
    let tmp_root =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ompsim-bench-jit-%d" (Unix.getpid ()))
    in
    let cache_dir = Filename.concat tmp_root "cache" in
    let cold_dir = Filename.concat tmp_root "cold" in
    let cache = Service.Cache.create ~capacity:8 ~dir:(Some cache_dir) () in
    let nt = Service.Native.create ~dir:(Some cache_dir) () in
    let plan, renaming =
      match Service.Cache.find_or_compile cache corr.K.nest with
      | Ok x -> x
      | Error e -> failwith ("plan compile failed: " ^ e)
    in
    let cparam = Service.Fingerprint.canonical_param renaming (K.param_of corr ~n) in
    Obsv.Control.with_enabled true @@ fun () ->
    Ompsim.Stats.reset ();
    let metric name =
      match Obsv.Metrics.find name with Some m -> Obsv.Metrics.total m | None -> 0
    in
    let compiles0 = metric "jit.compile" in
    let loads0 = metric "jit.load" in
    let fallbacks0 = metric "jit.fallback" in
    (* first attach cold-compiles the object into the cache dir *)
    let attach_ms =
      let t0 = Unix.gettimeofday () in
      let rc = Service.Native.recovery nt plan ~param:cparam in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      if not (R.native_enabled rc) then failwith "native backend failed to attach";
      (rc, ms)
    in
    let rc_native, cold_attach_ms = attach_ms in
    let rc_interp = Service.Plan.recovery plan ~param:cparam in
    let trip = R.trip_count rc_interp in
    let sink = ref 0 in
    (* (1) PR-1 workload: the chunked walk, exactly as exec runs it —
       one walk_hash call per chunk *)
    let walk_ns rc =
      let s =
        Ompsim.Calibrate.time_best ~reps:3 (fun () ->
            let pc = ref 1 in
            while !pc <= trip do
              let len = min chunk (trip - !pc + 1) in
              sink := !sink + R.walk_hash rc ~pc:!pc ~len;
              pc := !pc + len
            done)
      in
      s *. 1e9 /. float_of_int trip
    in
    let interp_walk = walk_ns rc_interp in
    let native_walk = walk_ns rc_native in
    (* (2) PR-3 workload: the §VI-A lane walk; native routes block
       materialization through the object's row-major filler *)
    let lanes_ns rc =
      let s =
        Ompsim.Calibrate.time_best ~reps:3 (fun () ->
            R.walk_lanes rc ~pc:1 ~len:trip ~vlength:lanes (fun ~base:_ ~count buf ->
                sink := !sink + count + buf.(0).(0)))
      in
      s *. 1e9 /. float_of_int trip
    in
    let interp_lanes = lanes_ns rc_interp in
    let native_lanes = lanes_ns rc_native in
    ignore !sink;
    (* (3) latencies: cold emit+compile in a fresh dir, warm dlopen of
       the published object, and the tier-resident steady state *)
    let fp = plan.Service.Plan.fingerprint in
    let inv = plan.Service.Plan.inversion in
    let cold_ms =
      let t0 = Unix.gettimeofday () in
      (match Jit.Compile.specialize ~dir:cold_dir ~fingerprint:fp inv with
      | Ok h -> Jit.Native.close h
      | Error e -> failwith ("cold compile failed: " ^ e));
      (Unix.gettimeofday () -. t0) *. 1e3
    in
    let warm_ms =
      let t0 = Unix.gettimeofday () in
      (match Jit.Compile.specialize ~dir:cold_dir ~fingerprint:fp inv with
      | Ok h -> Jit.Native.close h
      | Error e -> failwith ("warm load failed: " ^ e));
      (Unix.gettimeofday () -. t0) *. 1e3
    in
    let steady_reps = 200 in
    let steady_ns =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to steady_reps do
        let rc = Service.Native.recovery nt plan ~param:cparam in
        if not (R.native_enabled rc) then failwith "steady-state attach lost the backend"
      done;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int steady_reps
    in
    (* (4) bigint-headroom fallback: same plan, a parameter value whose
       intermediates would wrap native ints — the tier must refuse the
       backend and count the fallback *)
    let big = 3_000_000_000 in
    let rc_big = Service.Native.recovery nt plan ~param:(fun _ -> big) in
    if R.native_enabled rc_big then failwith "overflow-guarded nest accepted a native backend";
    if not (R.overflow_guarded rc_big) then failwith "expected an overflow-guarded recovery";
    let compiles = metric "jit.compile" - compiles0 in
    let loads = metric "jit.load" - loads0 in
    let fallbacks = metric "jit.fallback" - fallbacks0 in
    let tier = Service.Native.stats nt in
    (* compiles: tier cold + bench cold; loads: the warm dlopen only
       (cold-path loads ride the compile); tier: one attach per
       successful recovery call, one refused *)
    let reconciled =
      compiles = 2 && loads = 1 && fallbacks = 1
      && tier.Service.Native.served = 1 + steady_reps
      && tier.Service.Native.fallbacks = 1
    in
    let walk_speedup = interp_walk /. native_walk in
    let lanes_speedup = interp_lanes /. native_lanes in
    Printf.printf "%d collapsed iterations, chunk %d, %d lanes\n" trip chunk lanes;
    Printf.printf "%-44s %10.2f\n" "interpreted walk (ns/iter)" interp_walk;
    Printf.printf "%-44s %10.2f\n" "native walk_hash (ns/iter)" native_walk;
    Printf.printf "%-44s %10.2f\n" "interpreted lane walk (ns/iter)" interp_lanes;
    Printf.printf "%-44s %10.2f\n" "native lane walk (ns/iter)" native_lanes;
    Printf.printf "%-44s %9.1fx %s\n" "walk speedup (gate: >= 2x)" walk_speedup
      (if walk_speedup >= 2.0 then "ok" else "BELOW TARGET");
    Printf.printf "%-44s %9.1fx %s\n" "lane speedup (gate: >= 1.1x)" lanes_speedup
      (if lanes_speedup >= 1.1 then "ok" else "BELOW TARGET");
    Printf.printf "%-44s %10.1f ms\n" "cold emit+compile latency" cold_ms;
    Printf.printf "%-44s %10.2f ms\n" "warm .so load latency" warm_ms;
    Printf.printf "%-44s %10.0f ns\n" "cache-served attach (steady state)" steady_ns;
    Printf.printf
      "counters reconcile (jit.compile=%d jit.load=%d jit.fallback=%d served=%d/%d): %s\n" compiles
      loads fallbacks tier.Service.Native.served tier.Service.Native.fallbacks
      (if reconciled then "ok" else "MISMATCH");
    Obsv.Trace.clear ();
    Ompsim.Stats.reset ();
    Emit.write ~path:"BENCH_jit.json" ~artifact:"micro-jit"
      [ ("kernel", Emit.Str "correlation");
        ("n", Emit.Int n);
        ("iterations", Emit.Int trip);
        ("chunk", Emit.Int chunk);
        ("lanes", Emit.Int lanes);
        ("compiler", Emit.Str (Jit.Abi.cc ()));
        ("compiler_available", Emit.Bool true);
        ( "ns_per_iter",
          Emit.Obj
            [ ("interpreted_walk", Emit.F (interp_walk, 2));
              ("native_walk", Emit.F (native_walk, 2));
              ("interpreted_lanes", Emit.F (interp_lanes, 2));
              ("native_lanes", Emit.F (native_lanes, 2))
            ] );
        ( "speedup",
          Emit.Obj
            [ ("walk", Emit.F (walk_speedup, 2)); ("lanes", Emit.F (lanes_speedup, 2)) ] );
        ("native_speedup_ok", Emit.Bool (walk_speedup >= 2.0));
        ("lanes_speedup_ok", Emit.Bool (lanes_speedup >= 1.1));
        ( "latency",
          Emit.Obj
            [ ("cold_compile_ms", Emit.F (cold_ms, 2));
              ("cold_attach_ms", Emit.F (cold_attach_ms, 2));
              ("warm_load_ms", Emit.F (warm_ms, 3));
              ("cache_served_ns", Emit.F (steady_ns, 0))
            ] );
        ( "counters",
          Emit.Obj
            [ ("jit_compile", Emit.Int compiles);
              ("jit_load", Emit.Int loads);
              ("jit_fallback", Emit.Int fallbacks);
              ("tier_served", Emit.Int tier.Service.Native.served);
              ("tier_fallbacks", Emit.Int tier.Service.Native.fallbacks)
            ] );
        ("reconciled", Emit.Bool reconciled)
      ]
  end

(* micro-reduce: parallel reductions over the collapsed range. The
   workload is the skewed triangle (ltmp's space: i in [0,N), j in
   [0,i]) with a sum clause attached; each point additionally spins
   proportionally to i - j + 1 — the ltmp work profile — so
   equal-count static chunks are load-imbalanced and the
   divide-and-conquer splitter has something to win. Phases:
   (1) serial fold baseline and parallel reductions at 1..8 domains
   under static chunking, work stealing and D&C; (2) native
   one-call-per-chunk reduce_sum vs the interpreted clause fold;
   (3) a bit-identical sweep — every schedule x backend x lane width
   x faults-armed must reproduce the serial fold exactly — plus a
   D&C counter reconciliation against Schedule.dnc_leaves ground
   truth. The speedup gates (8-domain parallel >= 3x serial, D&C >=
   static on the skew) are hardware-dependent and emitted honestly
   next to the machine's domain count; the correctness gates must
   hold everywhere. *)
let micro_reduce () =
  let n = env_int "BENCH_REDUCE_N" 400 in
  let spin_scale = env_int "BENCH_REDUCE_SPIN" 2 in
  let n_sweep = env_int "BENCH_REDUCE_SWEEP_N" 40 in
  header (Printf.sprintf "micro-reduce: parallel sum over the skewed triangle (N=%d)" n);
  Emit.ensure_writable "BENCH_reduce.json";
  let module R = Trahrhe.Recovery in
  let module N = Trahrhe.Nest in
  let ltmp = Option.get (Kernels.Registry.find "ltmp") in
  let reduced param_n =
    let nest =
      N.with_reduce ltmp.K.nest
        (Some { N.op = N.Sum; value = N.default_reduce_value ltmp.K.nest })
    in
    let inv =
      match Trahrhe.Inversion.invert nest with
      | Ok i -> i
      | Error e -> failwith ("inversion failed: " ^ Trahrhe.Inversion.error_to_string e)
    in
    (nest, R.make inv ~param:(K.param_of ltmp ~n:param_n))
  in
  let _, rc = reduced n in
  let trip = R.trip_count rc in
  (* the skewed chunk body: fold the clause and spin i - j + 1 units
     per point, so chunk cost tracks the triangle's work profile *)
  let chunk_partial ~start ~len =
    let acc = ref 0 in
    R.walk rc ~pc:(start + 1) ~len (fun idx ->
        acc := !acc + R.reduce_value_int rc idx;
        let w = (idx.(0) - idx.(1) + 1) * spin_scale in
        let s = ref 0 in
        for q = 1 to w do
          s := !s + q
        done;
        ignore (Sys.opaque_identity !s));
    !acc
  in
  let serial_value = chunk_partial ~start:0 ~len:trip in
  let serial_s =
    Ompsim.Calibrate.time_best ~reps:3 (fun () -> ignore (chunk_partial ~start:0 ~len:trip))
  in
  let time_schedule ~nthreads schedule =
    Ompsim.Calibrate.time_best ~reps:3 (fun () ->
        match
          Ompsim.Par.reduce_chunks ~nthreads ~schedule ~n:trip ~combine:( + ) (fun ~thread:_ ->
              chunk_partial)
        with
        | Some v when v = serial_value -> ()
        | Some v -> failwith (Printf.sprintf "reduction mismatch: %d vs serial %d" v serial_value)
        | None -> failwith "empty reduction")
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let machine_domains = Domain.recommended_domain_count () in
  Printf.printf "%d collapsed iterations, spin scale %d, machine has %d domain(s)\n" trip
    spin_scale machine_domains;
  Printf.printf "%-10s %12s %12s %12s %10s %10s %10s\n" "domains" "static ms" "ws ms" "dnc ms"
    "sp static" "sp ws" "sp dnc";
  let rows =
    List.map
      (fun d ->
        let st = time_schedule ~nthreads:d Sched.Static in
        let ws = time_schedule ~nthreads:d (Sched.Work_stealing 64) in
        let dnc = time_schedule ~nthreads:d (Sched.Dnc 64) in
        Printf.printf "%-10d %12.2f %12.2f %12.2f %9.2fx %9.2fx %9.2fx\n" d (st *. 1e3)
          (ws *. 1e3) (dnc *. 1e3) (serial_s /. st) (serial_s /. ws) (serial_s /. dnc);
        (d, st, ws, dnc))
      domain_counts
  in
  let _, st8, ws8, dnc8 = List.nth rows (List.length rows - 1) in
  let best8 = min st8 (min ws8 dnc8) in
  let parallel_speedup = serial_s /. best8 in
  (* D&C vs static on the skew case, with a 5% measurement tolerance *)
  let dnc_at_least_static = dnc8 <= st8 *. 1.05 in
  let parallel_3x = parallel_speedup >= 3.0 in
  Printf.printf "%-44s %9.2fx %s\n" "8-domain speedup vs serial (gate: >= 3x)" parallel_speedup
    (if parallel_3x then "ok"
     else if machine_domains < 8 then
       Printf.sprintf "BELOW TARGET (machine has %d domain(s))" machine_domains
     else "BELOW TARGET");
  Printf.printf "%-44s %10s\n" "d&c >= static chunking on the skew (gate)"
    (if dnc_at_least_static then "ok" else "BELOW TARGET");
  (* native one-call-per-chunk clause reduction vs the interpreted
     fold (no spin here: this measures delivery of the clause itself) *)
  let compiler_available = Jit.Abi.available () in
  let interp_ns, native_ns, native_speedup =
    if not compiler_available then begin
      Printf.printf "C compiler unavailable; native reduce phase skipped\n";
      (0.0, 0.0, 0.0)
    end
    else begin
      let nest, _ = reduced n in
      let tmp_root =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ompsim-bench-reduce-%d" (Unix.getpid ()))
      in
      let cache = Service.Cache.create ~capacity:8 ~dir:(Some tmp_root) () in
      let nt = Service.Native.create ~dir:(Some tmp_root) () in
      let plan, renaming =
        match Service.Cache.find_or_compile cache nest with
        | Ok x -> x
        | Error e -> failwith ("plan compile failed: " ^ e)
      in
      let cparam = Service.Fingerprint.canonical_param renaming (K.param_of ltmp ~n) in
      let rc_native = Service.Native.recovery nt plan ~param:cparam in
      if not (R.native_enabled rc_native) then failwith "native backend failed to attach";
      let rc_interp = Service.Plan.recovery plan ~param:cparam in
      let chunk = 4096 in
      let sink = ref 0 in
      let reduce_ns rc =
        let s =
          Ompsim.Calibrate.time_best ~reps:3 (fun () ->
              let pc = ref 1 in
              while !pc <= trip do
                let len = min chunk (trip - !pc + 1) in
                sink := !sink + R.walk_reduce_sum rc ~pc:!pc ~len;
                pc := !pc + len
              done)
        in
        s *. 1e9 /. float_of_int trip
      in
      let interp = reduce_ns rc_interp in
      let native = reduce_ns rc_native in
      ignore !sink;
      (* the native accumulator must agree bit for bit *)
      let vi = R.walk_reduce_sum rc_interp ~pc:1 ~len:trip in
      let vn = R.walk_reduce_sum rc_native ~pc:1 ~len:trip in
      if vi <> vn then failwith (Printf.sprintf "native reduce %d <> interpreted %d" vn vi);
      Printf.printf "%-44s %10.2f\n" "interpreted clause fold (ns/iter)" interp;
      Printf.printf "%-44s %10.2f\n" "native reduce_sum (ns/iter)" native;
      Printf.printf "%-44s %9.1fx\n" "native reduce speedup" (interp /. native);
      (interp, native, interp /. native)
    end
  in
  (* bit-identical sweep on a small instance: every schedule x backend
     x lane width x faults-armed combination must reproduce the serial
     fold exactly — the combine tree is keyed by chunk position, so
     nothing here is allowed to move a bit *)
  let _, rc_s = reduced n_sweep in
  let trip_s = R.trip_count rc_s in
  let serial_s_value = R.walk_reduce_sum rc_s ~pc:1 ~len:trip_s in
  let sweep_cases = ref 0 in
  let sweep_ok = ref true in
  let check where = function
    | Some v when v = serial_s_value -> incr sweep_cases
    | Some v ->
      incr sweep_cases;
      sweep_ok := false;
      Printf.printf "  sweep MISMATCH at %s: %d vs %d\n" where v serial_s_value
    | None ->
      incr sweep_cases;
      sweep_ok := false;
      Printf.printf "  sweep EMPTY at %s\n" where
  in
  let body ~thread:_ ~start ~len = R.walk_reduce_sum rc_s ~pc:(start + 1) ~len in
  let faults = Some { Ompsim.Fault.default with p = 0.3; seed = 0x5eed } in
  let sweep_schedules =
    [ Sched.Static; Sched.Static_chunk 3; Sched.Dynamic 2; Sched.Guided 2;
      Sched.Work_stealing 2; Sched.Dnc 2 ]
  in
  List.iter
    (fun (backend, bname) ->
      Ompsim.Par.with_backend backend (fun () ->
          List.iter
            (fun schedule ->
              let sname = Sched.to_string schedule in
              check
                (Printf.sprintf "%s/%s" bname sname)
                (Ompsim.Par.reduce_chunks ~nthreads:3 ~schedule ~n:trip_s ~combine:( + ) body);
              match
                Ompsim.Par.reduce_resilient ~retries:2 ~faults ~nthreads:3 ~schedule ~n:trip_s
                  ~combine:( + ) body
              with
              | Ok r -> check (Printf.sprintf "%s/%s/faults" bname sname) r
              | Error e ->
                incr sweep_cases;
                sweep_ok := false;
                Printf.printf "  sweep ERROR at %s/%s/faults: %s\n" bname sname
                  (Ompsim.Par.describe_error e))
            sweep_schedules))
    [ (Ompsim.Par.Pool, "pool"); (Ompsim.Par.Spawn, "spawn") ];
  (* lane widths feeding the fold *)
  let depth = 2 in
  List.iter
    (fun vlength ->
      let lane_body ~thread:_ ~start ~len =
        let idx = Array.make depth 0 in
        let acc = ref 0 in
        R.walk_lanes rc_s ~pc:(start + 1) ~len ~vlength (fun ~base:_ ~count lanes ->
            for l = 0 to count - 1 do
              for k = 0 to depth - 1 do
                idx.(k) <- lanes.(k).(l)
              done;
              acc := !acc + R.reduce_value_int rc_s idx
            done);
        !acc
      in
      check
        (Printf.sprintf "lanes/%d" vlength)
        (Ompsim.Par.reduce_chunks ~nthreads:3 ~schedule:(Sched.Dynamic 2) ~n:trip_s
           ~combine:( + ) lane_body))
    [ 1; 4; 8; 32 ];
  Printf.printf "%-44s %6d cases %s\n" "bit-identical sweep" !sweep_cases
    (if !sweep_ok then "ok" else "MISMATCH");
  (* D&C counter reconciliation against dnc_leaves ground truth *)
  let grain = 16 in
  let leaves = List.length (Sched.dnc_leaves ~grain ~n:trip_s) in
  let dnc_reconciled =
    Obsv.Control.with_enabled true @@ fun () ->
    let total = Obsv.Metrics.total in
    let splits0 = total Ompsim.Stats.dnc_splits in
    let chunks0 = total Ompsim.Stats.dnc_grain_chunks in
    let partials0 = total Ompsim.Stats.reduce_partials in
    let combines0 = total Ompsim.Stats.reduce_combines in
    check "dnc/counters"
      (Ompsim.Par.reduce_chunks ~nthreads:4 ~schedule:(Sched.Dnc grain) ~n:trip_s
         ~combine:( + ) body);
    total Ompsim.Stats.dnc_grain_chunks - chunks0 = leaves
    && total Ompsim.Stats.dnc_splits - splits0 = leaves - 1
    && total Ompsim.Stats.reduce_partials - partials0 = leaves
    && total Ompsim.Stats.reduce_combines - combines0 = leaves - 1
  in
  Printf.printf "%-44s %10s\n"
    (Printf.sprintf "dnc counters = dnc_leaves (%d leaves)" leaves)
    (if dnc_reconciled then "ok" else "MISMATCH");
  Obsv.Trace.clear ();
  Ompsim.Stats.reset ();
  Emit.write ~path:"BENCH_reduce.json" ~artifact:"micro-reduce"
    [ ("kernel", Emit.Str "ltmp triangle + sum clause");
      ("n", Emit.Int n);
      ("iterations", Emit.Int trip);
      ("spin_scale", Emit.Int spin_scale);
      ("serial_ms", Emit.F (serial_s *. 1e3, 2));
      ( "rows",
        Emit.Arr
          (List.map
             (fun (d, st, ws, dnc) ->
               Emit.Obj
                 [ ("domains", Emit.Int d);
                   ("static_ms", Emit.F (st *. 1e3, 2));
                   ("ws_ms", Emit.F (ws *. 1e3, 2));
                   ("dnc_ms", Emit.F (dnc *. 1e3, 2));
                   ("speedup_static", Emit.F (serial_s /. st, 2));
                   ("speedup_ws", Emit.F (serial_s /. ws, 2));
                   ("speedup_dnc", Emit.F (serial_s /. dnc, 2))
                 ])
             rows) );
      ( "native",
        Emit.Obj
          [ ("compiler_available", Emit.Bool compiler_available);
            ("interpreted_ns_iter", Emit.F (interp_ns, 2));
            ("native_ns_iter", Emit.F (native_ns, 2));
            ("speedup", Emit.F (native_speedup, 2))
          ] );
      ( "sweep",
        Emit.Obj
          [ ("n", Emit.Int n_sweep);
            ("cases", Emit.Int !sweep_cases);
            ("bit_identical", Emit.Bool !sweep_ok)
          ] );
      ( "dnc",
        Emit.Obj
          [ ("grain", Emit.Int grain);
            ("leaves", Emit.Int leaves);
            ("counters_reconciled", Emit.Bool dnc_reconciled)
          ] );
      ( "gates",
        Emit.Obj
          [ ("parallel_speedup_3x", Emit.Bool parallel_3x);
            ("dnc_at_least_static", Emit.Bool dnc_at_least_static);
            ("bit_identical", Emit.Bool !sweep_ok);
            ("dnc_counters_reconciled", Emit.Bool dnc_reconciled)
          ] );
      ("parallel_speedup", Emit.F (parallel_speedup, 2))
    ]

(* micro-serve: the non-blocking multi-client serve loop. One server
   (event loop + plan cache) in its own domain; a client driver issues
   Zipf-skewed compile requests over the kernel registry and measures
   per-request round-trip latency. Phases: (1) cold — a single
   blocking client touches every kernel for the first time, so each
   distinct fingerprint pays a compile; (2) warm — 1..BENCH_SERVE_CLIENTS
   concurrent clients against the now-hot cache. The 1-client row is
   the blocking baseline: strict request/response, window 1 — the best
   case of a blocking accept-loop server, which can never overlap
   round trips. Multi-client rows pipeline up to BENCH_SERVE_WINDOW
   outstanding requests per connection, which only a multiplexing loop
   can serve. The ISSUE acceptance gate wants warm 8-client throughput
   >= 4x the 1-client baseline. Afterwards the serve_stats the loop
   returns, the client-side request log, and the obsv serve.* /
   service.inflight counters must reconcile exactly. *)
let micro_serve () =
  let module Server = Service.Server in
  let max_clients = env_int "BENCH_SERVE_CLIENTS" 8 in
  let reqs_total = env_int "BENCH_SERVE_REQS" 16000 in
  let window = max 1 (env_int "BENCH_SERVE_WINDOW" 16) in
  (* each warm phase reports its median-throughput trial: one 10ms
     wall is at the mercy of a single GC pause or scheduler hiccup,
     and "sustained" means the typical rate, not the unluckiest *)
  let trials = max 1 (env_int "BENCH_SERVE_TRIALS" 3) in
  (* the Zipf mix draws from the kernel registry: every [kernel=NAME]
     request resolves to the registry's shared nest value, which is
     exactly the workload the fingerprint memo serves *)
  let nests = Array.of_list Kernels.Registry.names in
  let nnests = min (Array.length nests) (env_int "BENCH_SERVE_NESTS" (Array.length nests)) in
  header
    (Printf.sprintf
       "micro-serve: multi-client serve loop, %d kernels, %d requests/phase, up to %d clients (pipeline window %d)"
       nnests reqs_total max_clients window);
  Emit.ensure_writable "BENCH_serve.json";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ompsim-bench-serve-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let req_strs = Array.init nnests (fun idx -> Printf.sprintf "compile kernel=%s\n" nests.(idx)) in
  let connect () =
    let rec go tries =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.01;
        go (tries - 1)
    in
    go 500
  in
  let send_all fd s =
    let n = String.length s in
    let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
    go 0
  in
  (* incremental line reader with an explicit scan position, so a
     batch of pipelined responses is split without re-copying *)
  let make_reader fd =
    let buf = Buffer.create 4096 in
    let pos = ref 0 in
    let chunk = Bytes.create 4096 in
    fun () ->
      let rec next () =
        let s = Buffer.contents buf in
        match String.index_from_opt s !pos '\n' with
        | Some i ->
          let line = String.sub s !pos (i - !pos) in
          pos := i + 1;
          if !pos = String.length s then begin
            Buffer.clear buf;
            pos := 0
          end;
          line
        | None -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> failwith "micro-serve: unexpected EOF"
          | r ->
            Buffer.add_subbytes buf chunk 0 r;
            next ())
      in
      next ()
  in
  let ok_marker = "\"status\":\"ok\"" in
  let is_ok line =
    let nl = String.length ok_marker and hl = String.length line in
    let rec find i = i + nl <= hl && (String.sub line i nl = ok_marker || find (i + 1)) in
    find 0
  in
  (* one client: [count] Zipf-skewed requests with at most [window]
     outstanding. window=1 is the classic blocking request/response
     client (the baseline); window>1 pipelines — the framing layer
     makes that safe, and responses still come back in order. *)
  let client_loop seed count window =
    let fd = connect () in
    let read_line = make_reader fd in
    let lat = Array.make (max 1 count) 0.0 in
    let t_sent = Array.make (max 1 count) 0.0 in
    let oks = ref 0 in
    let state = ref (12345 + (seed * 9973)) in
    let pick () =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      let u = float_of_int !state /. 1073741824.0 in
      min (nnests - 1) (int_of_float (float_of_int nnests *. u *. u))
    in
    let sent = ref 0 and recvd = ref 0 in
    let batch = Buffer.create 1024 in
    while !recvd < count do
      if !sent < count && !sent - !recvd < window then begin
        (* fill the window in one write *)
        Buffer.clear batch;
        let now = Unix.gettimeofday () in
        while !sent < count && !sent - !recvd < window do
          Buffer.add_string batch req_strs.(pick ());
          t_sent.(!sent) <- now;
          incr sent
        done;
        send_all fd (Buffer.contents batch)
      end;
      let line = read_line () in
      lat.(!recvd) <- (Unix.gettimeofday () -. t_sent.(!recvd)) *. 1e6;
      if is_ok line then incr oks;
      incr recvd
    done;
    Unix.close fd;
    (lat, !oks)
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  (* N concurrent clients driven from ONE domain: each client is a
     connection with up to [window] outstanding pipelined requests,
     multiplexed over its own select. What the server sees is real
     concurrency — N sockets with interleaved outstanding requests —
     but the measurement stays about the serve loop: on a small (even
     single-core) box, a domain per client would mostly measure the OS
     scheduler and the runtime's stop-the-world synchronization across
     domains. The 1-client phase instead runs [client_loop], the
     classic blocking request/response client. *)
  (* every request of every trial goes through the one server, so the
     reconciliation at the end must see them all, not just the median
     trials the report keeps *)
  let total_sent = ref 0 in
  let total_oks = ref 0 in
  let total_conns = ref 0 in
  let run_phase nclients window =
    let per_client = max 1 (reqs_total / nclients) in
    total_sent := !total_sent + (nclients * per_client);
    total_conns := !total_conns + nclients;
    if nclients = 1 && window = 1 then begin
      let t0 = Unix.gettimeofday () in
      let lat, oks = client_loop 0 per_client 1 in
      let wall = Unix.gettimeofday () -. t0 in
      total_oks := !total_oks + oks;
      Array.sort compare lat;
      (per_client, oks, wall, float_of_int per_client /. wall, lat)
    end
    else begin
      let fds = Array.init nclients (fun _ -> connect ()) in
      let bufs = Array.init nclients (fun _ -> Buffer.create 4096) in
      let poss = Array.make nclients 0 in
      let sent = Array.make nclients 0 in
      let recvd = Array.make nclients 0 in
      let states = Array.init nclients (fun c -> 12345 + (c * 9973)) in
      let lats = Array.make (nclients * per_client) 0.0 in
      let t_sent = Array.make (nclients * per_client) 0.0 in
      let oks = ref 0 in
      let finished = ref 0 in
      let chunk = Bytes.create 65536 in
      let batch = Buffer.create 1024 in
      let contains_ok s lo hi =
        let m = String.length ok_marker in
        let rec at i j = j = m || (s.[i + j] = ok_marker.[j] && at i (j + 1)) in
        let rec find i = i + m <= hi && (at i 0 || find (i + 1)) in
        find lo
      in
      (* top up [c]'s window with one batched write *)
      let fill c =
        if sent.(c) < per_client && sent.(c) - recvd.(c) < window then begin
          Buffer.clear batch;
          let now = Unix.gettimeofday () in
          while sent.(c) < per_client && sent.(c) - recvd.(c) < window do
            states.(c) <- ((states.(c) * 1103515245) + 12345) land 0x3FFFFFFF;
            let u = float_of_int states.(c) /. 1073741824.0 in
            let idx = min (nnests - 1) (int_of_float (float_of_int nnests *. u *. u)) in
            Buffer.add_string batch req_strs.(idx);
            t_sent.((c * per_client) + sent.(c)) <- now;
            sent.(c) <- sent.(c) + 1
          done;
          send_all fds.(c) (Buffer.contents batch)
        end
      in
      (* one read, then pop every complete response line it brought *)
      let read_burst c =
        match Unix.read fds.(c) chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "micro-serve: unexpected EOF"
        | r ->
          Buffer.add_subbytes bufs.(c) chunk 0 r;
          let now = Unix.gettimeofday () in
          let s = Buffer.contents bufs.(c) in
          let n = String.length s in
          let pos = ref poss.(c) in
          let scanning = ref true in
          while !scanning do
            match String.index_from_opt s !pos '\n' with
            | None -> scanning := false
            | Some i ->
              if contains_ok s !pos i then incr oks;
              let slot = (c * per_client) + recvd.(c) in
              lats.(slot) <- (now -. t_sent.(slot)) *. 1e6;
              recvd.(c) <- recvd.(c) + 1;
              pos := i + 1;
              if recvd.(c) = per_client then begin
                incr finished;
                scanning := false
              end
          done;
          if !pos = n then begin
            Buffer.clear bufs.(c);
            poss.(c) <- 0
          end
          else poss.(c) <- !pos
      in
      let t0 = Unix.gettimeofday () in
      while !finished < nclients do
        for c = 0 to nclients - 1 do
          fill c
        done;
        let waiting = ref [] in
        for c = nclients - 1 downto 0 do
          if recvd.(c) < sent.(c) then waiting := fds.(c) :: !waiting
        done;
        match Unix.select !waiting [] [] 1.0 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
          for c = 0 to nclients - 1 do
            if recvd.(c) < per_client && List.mem fds.(c) ready then read_burst c
          done
      done;
      let wall = Unix.gettimeofday () -. t0 in
      Array.iter Unix.close fds;
      Array.sort compare lats;
      total_oks := !total_oks + !oks;
      let total = nclients * per_client in
      (total, !oks, wall, float_of_int total /. wall, lats)
    end
  in
  let run_phase_median nclients window =
    let runs = List.init trials (fun _ -> run_phase nclients window) in
    let sorted = List.sort (fun (_, _, _, a, _) (_, _, _, b, _) -> compare a b) runs in
    List.nth sorted (trials / 2)
  in
  Obsv.Control.with_enabled true @@ fun () ->
  let metric name =
    match Obsv.Metrics.find name with Some m -> Obsv.Metrics.total m | None -> 0
  in
  let accept0 = metric "serve.accept" in
  let timeout0 = metric "serve.timeout" in
  let rejected0 = metric "serve.rejected" in
  let inflight0 = metric "service.inflight" in
  let cache = Service.Cache.create ~capacity:(2 * nnests) ~dir:None () in
  let config =
    { Server.default_serve_config with
      max_clients = 2 * max_clients;
      (* admission-capped throughput is the tests' concern; the bench
         measures loop capacity, so the cap covers every outstanding
         request the client fleet can have in flight *)
      max_inflight = max Server.default_serve_config.max_inflight (max_clients * window);
      (* let one turn retire a connection's whole pipeline window, so
         its responses batch into one write *)
      service_quantum = max Server.default_serve_config.service_quantum window }
  in
  let server = Domain.spawn (fun () -> Server.serve ~cache ~config ~socket ()) in
  let rec wait_ready tries =
    if not (Sys.file_exists socket) then
      if tries = 0 then failwith "micro-serve: server socket never appeared"
      else begin
        Unix.sleepf 0.01;
        wait_ready (tries - 1)
      end
  in
  wait_ready 500;
  (* (1) cold: one blocking client, every kernel's first touch pays a
     compile through the symbolic pipeline *)
  let cold_sent, cold_oks, _, cold_rps, cold_lats =
    let fd = connect () in
    let read_line = make_reader fd in
    let t0 = Unix.gettimeofday () in
    let lats =
      Array.init nnests (fun idx ->
          let t = Unix.gettimeofday () in
          send_all fd req_strs.(idx);
          ignore (read_line ());
          (Unix.gettimeofday () -. t) *. 1e6)
    in
    let wall = Unix.gettimeofday () -. t0 in
    Unix.close fd;
    total_sent := !total_sent + nnests;
    total_oks := !total_oks + nnests;
    total_conns := !total_conns + 1;
    Array.sort compare lats;
    (nnests, nnests, wall, float_of_int nnests /. wall, lats)
  in
  ignore cold_oks;
  Printf.printf "cold: %d compiles, %8.0f req/s, p50 %.0f us, p99 %.0f us\n" cold_sent cold_rps
    (percentile cold_lats 0.50) (percentile cold_lats 0.99);
  (* (2) warm: 1..max clients against the hot cache. The 1-client
     phase runs with window 1 — a strictly blocking request/response
     client, which is also the best case of the old blocking server —
     and the multi-client phases pipeline up to [window] outstanding
     requests each, which only a multiplexing loop can serve fairly. *)
  let rec client_counts c = if c >= max_clients then [ max_clients ] else c :: client_counts (c * 2) in
  let counts = client_counts 1 in
  let phases =
    List.map
      (fun nclients ->
        let w = if nclients = 1 then 1 else window in
        let sent, oks, wall, rps, lats = run_phase_median nclients w in
        Printf.printf
          "warm %2d client(s) (window %2d): %6d reqs in %6.3f s, %8.0f req/s, p50 %.0f us, p99 %.0f us, p999 %.0f us\n"
          nclients w sent wall rps (percentile lats 0.50) (percentile lats 0.99)
          (percentile lats 0.999);
        (nclients, sent, oks, wall, rps, lats))
      counts
  in
  (* shut the loop down and reconcile every ledger *)
  let shutdown_fd = connect () in
  let read_ack = make_reader shutdown_fd in
  send_all shutdown_fd "shutdown\n";
  ignore (read_ack ());
  Unix.close shutdown_fd;
  let stats =
    match Domain.join server with
    | Ok s -> s
    | Error e -> failwith ("micro-serve: serve failed: " ^ e)
  in
  let sent_total = !total_sent + 1 in
  let oks_total = !total_oks + 1 in
  let conns_total = !total_conns + 1 in
  let cs = Service.Cache.stats cache in
  (* several registry kernels canonicalize to the same iteration space
     (alpha-renaming erases their differences), so the cold sweep
     compiles one plan per DISTINCT fingerprint, not one per kernel *)
  let distinct_plans =
    List.init nnests (fun idx ->
        match Kernels.Registry.find nests.(idx) with
        | Some k -> Service.Fingerprint.hash k.Kernels.Kernel.nest
        | None -> assert false)
    |> List.sort_uniq compare |> List.length
  in
  let reconciled =
    stats.Server.requests = sent_total
    && stats.Server.ok_responses = oks_total
    && stats.Server.connections = conns_total
    && stats.Server.connections = metric "serve.accept" - accept0
    && stats.Server.timeouts = metric "serve.timeout" - timeout0
    && stats.Server.rejected = metric "serve.rejected" - rejected0
    && stats.Server.requests = metric "service.inflight" - inflight0
    && stats.Server.inflight_final = 0
    && stats.Server.dropped = 0
    && cs.Service.Cache.hits + cs.Service.Cache.misses + cs.Service.Cache.singleflight_waits
       = sent_total - 1 (* every request but [shutdown] touched the cache *)
    && cs.Service.Cache.misses = distinct_plans
  in
  Printf.printf "counters reconcile (serve_stats = request log = obsv serve.*): %s\n"
    (if reconciled then "ok" else "MISMATCH");
  let baseline_rps =
    match phases with (1, _, _, _, rps, _) :: _ -> rps | _ -> cold_rps
  in
  let peak_clients, peak_rps =
    List.fold_left
      (fun (bc, br) (n, _, _, _, rps, _) -> if rps > br then (n, rps) else (bc, br))
      (1, baseline_rps) phases
  in
  (* the acceptance gate reads the [max_clients]-client row itself,
     not whichever client count happened to peak *)
  let gate_rps =
    List.fold_left
      (fun acc (n, _, _, _, rps, _) -> if n = max_clients then rps else acc)
      peak_rps phases
  in
  let speedup = gate_rps /. baseline_rps in
  Printf.printf "throughput: 1 client %8.0f req/s, %d clients %8.0f req/s -> %.2fx\n" baseline_rps
    max_clients gate_rps speedup;
  Emit.write ~path:"BENCH_serve.json" ~artifact:"micro-serve"
    [ ("kernels", Emit.Int nnests);
      ("requests_per_phase", Emit.Int reqs_total);
      ("trials_per_phase", Emit.Int trials);
      ("max_clients", Emit.Int max_clients);
      ("pipeline_window", Emit.Int window);
      ( "cold",
        Emit.Obj
          [ ("requests", Emit.Int cold_sent);
            ("req_per_s", Emit.F (cold_rps, 0));
            ("p50_us", Emit.F (percentile cold_lats 0.50, 0));
            ("p99_us", Emit.F (percentile cold_lats 0.99, 0))
          ] );
      ( "warm",
        Emit.Arr
          (List.map
             (fun (nclients, sent, _, wall, rps, lats) ->
               Emit.Obj
                 [ ("clients", Emit.Int nclients);
                   ("requests", Emit.Int sent);
                   ("wall_s", Emit.F (wall, 3));
                   ("req_per_s", Emit.F (rps, 0));
                   ("p50_us", Emit.F (percentile lats 0.50, 0));
                   ("p99_us", Emit.F (percentile lats 0.99, 0));
                   ("p999_us", Emit.F (percentile lats 0.999, 0))
                 ])
             phases) );
      ( "throughput",
        Emit.Obj
          [ ("baseline_1_client_req_per_s", Emit.F (baseline_rps, 0));
            ("gate_clients", Emit.Int max_clients);
            ("gate_req_per_s", Emit.F (gate_rps, 0));
            ("peak_clients", Emit.Int peak_clients);
            ("peak_req_per_s", Emit.F (peak_rps, 0));
            ("speedup", Emit.F (speedup, 2))
          ] );
      ("serve_speedup_ok", Emit.Bool (speedup >= 4.0));
      ( "counters",
        Emit.Obj
          [ ("connections", Emit.Int stats.Server.connections);
            ("requests", Emit.Int stats.Server.requests);
            ("ok_responses", Emit.Int stats.Server.ok_responses);
            ("error_responses", Emit.Int stats.Server.error_responses);
            ("timeouts", Emit.Int stats.Server.timeouts);
            ("rejected", Emit.Int stats.Server.rejected);
            ("dropped", Emit.Int stats.Server.dropped);
            ("max_concurrent", Emit.Int stats.Server.max_concurrent);
            ("cache_hits", Emit.Int cs.Service.Cache.hits);
            ("cache_misses", Emit.Int cs.Service.Cache.misses)
          ] );
      ("reconciled", Emit.Bool reconciled)
    ]

(* certified numeric inversion (ISSUE 10): per-recovery cost of the
   seeded bracket search against the closed forms it replaces, the
   chunked-walk amortization that hides it, the quintic kernel the
   radical cap used to reject, and counter reconciliation against
   ground truth. Gates: numeric recovery within 5x closed-form, and
   inversion.numeric / inversion.closed_form matching trip x levels. *)
let micro_invert () =
  header "micro-invert: certified numeric recovery vs closed forms";
  Emit.ensure_writable "BENCH_invert.json";
  let module R = Trahrhe.Recovery in
  let n = env_int "BENCH_INVERT_N" 400 in
  let corr = Option.get (Kernels.Registry.find "correlation") in
  let param = K.param_of corr ~n in
  let inv_c = K.inversion corr in
  let inv_n = Trahrhe.Inversion.invert_exn ~force_numeric:true corr.K.nest in
  let rc_c = R.make inv_c ~param in
  let rc_n = R.make inv_n ~param in
  let trip = R.trip_count rc_c in
  let sink = ref 0 in
  (* every-iteration recovery: the worst case for the numeric path *)
  let ns_per f =
    let s = Ompsim.Calibrate.time_best ~reps:3 f in
    s *. 1e9 /. float_of_int trip
  in
  let recover_closed =
    ns_per (fun () ->
        for pc = 1 to trip do
          sink := !sink + (R.recover_guarded rc_c pc).(0)
        done)
  in
  let recover_numeric =
    ns_per (fun () ->
        for pc = 1 to trip do
          sink := !sink + (R.recover_guarded rc_n pc).(0)
        done)
  in
  (* chunked walk: one recovery per chunk, incrementation after — the
     §V deployment shape, where the recovery cost amortizes away *)
  let chunks = 64 in
  let walk_with rc =
    ns_per (fun () ->
        let chunk = max 1 (trip / chunks) in
        let pc = ref 1 in
        while !pc <= trip do
          let len = min chunk (trip - !pc + 1) in
          R.walk rc ~pc:!pc ~len (fun idx -> sink := !sink + idx.(0));
          pc := !pc + len
        done)
  in
  let walk_closed = walk_with rc_c in
  let walk_numeric = walk_with rc_n in
  ignore !sink;
  let ratio_each = recover_numeric /. recover_closed in
  let ratio_walk = walk_numeric /. walk_closed in
  Printf.printf "%-54s %10s\n" (Printf.sprintf "strategy (correlation, N=%d)" n) "ns/iter";
  List.iter
    (fun (name, ns) -> Printf.printf "%-54s %10.1f\n" name ns)
    [ ("closed-form recovery at every iteration", recover_closed);
      ("numeric recovery at every iteration", recover_numeric);
      (Printf.sprintf "chunked walk (%d chunks), closed forms" chunks, walk_closed);
      (Printf.sprintf "chunked walk (%d chunks), numeric" chunks, walk_numeric) ];
  Printf.printf "numeric vs closed: %.2fx per recovery, %.2fx chunk-amortized\n" ratio_each
    ratio_walk;
  (* the quintic kernel the radical cap rejected: recovery now works,
     counters and certificates reconcile against ground truth *)
  let deep = Option.get (Kernels.Registry.find "simplex5") in
  let dn = deep.K.default_n in
  let rc_d = K.recovery deep ~n:dn in
  let dtrip = R.trip_count rc_d in
  let levels = Array.length (R.recover_guarded rc_d 1) in
  let numeric_levels =
    Array.fold_left
      (fun acc r -> match r with Trahrhe.Inversion.Numeric _ -> acc + 1 | _ -> acc)
      0
      (K.inversion deep).Trahrhe.Inversion.recoveries
  in
  let reconciled =
    Obsv.Control.with_enabled true @@ fun () ->
    let n0 = R.numeric_recoveries () and c0 = R.closed_form_recoveries () in
    for pc = 1 to dtrip do
      sink := !sink + (R.recover_guarded rc_d pc).(0)
    done;
    R.numeric_recoveries () - n0 = dtrip * numeric_levels
    && R.closed_form_recoveries () - c0 = dtrip * (levels - numeric_levels)
  in
  let deep_each =
    let s = Ompsim.Calibrate.time_best ~reps:3 (fun () ->
        for pc = 1 to dtrip do
          sink := !sink + (R.recover_guarded rc_d pc).(0)
        done)
    in
    s *. 1e9 /. float_of_int dtrip
  in
  (* isolation effort on the quintic at a few representative ranks *)
  let newton = ref 0 and bisect = ref 0 and probes = ref 0 in
  List.iter
    (fun pc ->
      let idx = R.recover_guarded rc_d pc in
      match R.isolate_level rc_d idx ~pc ~level:0 with
      | Some (Ok e) ->
        newton := !newton + e.Rootsolve.Isolate.newton_steps;
        bisect := !bisect + e.Rootsolve.Isolate.bisect_steps;
        incr probes
      | _ -> ())
    [ 1; dtrip / 4; dtrip / 2; (3 * dtrip) / 4; dtrip ];
  Printf.printf
    "simplex5 (n=%d, trip %d): %.1f ns/recovery; avg %.1f newton + %.1f bisect steps; counters \
     %s\n"
    dn dtrip deep_each
    (float_of_int !newton /. float_of_int (max 1 !probes))
    (float_of_int !bisect /. float_of_int (max 1 !probes))
    (if reconciled then "reconciled" else "MISMATCH");
  let within_5x = ratio_each <= 5.0 in
  Printf.printf "gates: within_5x=%b reconciled=%b\n" within_5x reconciled;
  Emit.write ~path:"BENCH_invert.json" ~artifact:"micro-invert"
    [ ("kernel", Emit.Str "correlation");
      ("n", Emit.Int n);
      ("iterations", Emit.Int trip);
      ( "ns_per_recovery",
        Emit.Obj
          [ ("closed_form", Emit.F (recover_closed, 2));
            ("numeric", Emit.F (recover_numeric, 2));
            ("walk_closed_form", Emit.F (walk_closed, 2));
            ("walk_numeric", Emit.F (walk_numeric, 2))
          ] );
      ( "ratio",
        Emit.Obj
          [ ("numeric_vs_closed_each", Emit.F (ratio_each, 3));
            ("numeric_vs_closed_walk", Emit.F (ratio_walk, 3))
          ] );
      ( "simplex5",
        Emit.Obj
          [ ("n", Emit.Int dn);
            ("iterations", Emit.Int dtrip);
            ("ns_per_recovery", Emit.F (deep_each, 2));
            ("numeric_levels", Emit.Int numeric_levels);
            ("levels", Emit.Int levels);
            ("newton_steps", Emit.Int !newton);
            ("bisect_steps", Emit.Int !bisect)
          ] );
      ("within_5x", Emit.Bool within_5x);
      ("reconciled", Emit.Bool reconciled)
    ]

(* ---------------- driver ---------------- *)

let artifacts =
  [ ("fig2", fig2);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("codegen", codegen);
    ("ablation-chunk", ablation_chunk);
    ("ablation-threads", ablation_threads);
    ("ablation-recovery", ablation_recovery);
    ("ablation-gpu", ablation_gpu);
    ("ablation-simd", ablation_simd);
    ("micro", micro);
    ("micro-recovery", micro_recovery);
    ("micro-invert", micro_invert);
    ("micro-pool", micro_pool);
    ("micro-obsv", micro_obsv);
    ("micro-lanes", micro_lanes);
    ("micro-steal", micro_steal);
    ("micro-fault", micro_fault);
    ("micro-cache", micro_cache);
    ("micro-jit", micro_jit);
    ("micro-reduce", micro_reduce);
    ("micro-serve", micro_serve);
    ("micro-chaos", Chaos.run) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) artifacts
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name artifacts with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown artifact %S; available: %s\n" name
            (String.concat " " (List.map fst artifacts));
          exit 1)
      names
