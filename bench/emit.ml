(* Shared emitter for the BENCH_*.json artifacts.

   Every artifact used to assemble its JSON by hand with printf format
   strings; this module is the one place that owns the document
   structure, the escaping, the schema version and the git provenance
   stamp. [write] injects "artifact"/"schema_version"/"git" as the
   leading fields so every artifact stays greppable the same way
   (CI matches on ["schema_version": N] literally). *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Int of int
  | Bool of bool
  | F of float * int  (* fixed-point with the given number of decimals *)
  | G of float  (* shortest %g rendering, for rates like 0.02 *)

(* bump when the shape of any BENCH_*.json changes *)
let schema_version = 3

(* hardware context: perf numbers are meaningless across machines
   without it, and the reduction/steal artifacts gate on parallel
   speedups that only make sense relative to the domain count *)
let cpu_model =
  lazy
    (try
       let ic = open_in "/proc/cpuinfo" in
       let rec scan () =
         match input_line ic with
         | exception End_of_file -> "unknown"
         | line ->
           if String.length line >= 10 && String.sub line 0 10 = "model name" then
             match String.index_opt line ':' with
             | Some i -> String.trim (String.sub line (i + 1) (String.length line - i - 1))
             | None -> scan ()
           else scan ()
       in
       let m = scan () in
       close_in ic;
       m
     with Sys_error _ -> "unknown")

let git_describe =
  lazy
    (try
       let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       (match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown")
     with Unix.Unix_error _ | Sys_error _ -> "unknown")

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 1024 in
  let pad indent = Buffer.add_string buf (String.make indent ' ') in
  let rec render indent = function
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          render (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          render (indent + 2) v)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | F (x, decimals) -> Buffer.add_string buf (Printf.sprintf "%.*f" decimals x)
    | G x -> Buffer.add_string buf (Printf.sprintf "%g" x)
  in
  render 0 v;
  Buffer.contents buf

(* fail fast, BEFORE measuring for seconds, if the output path cannot
   be created (read-only checkout, missing directory, ...) *)
let ensure_writable path =
  try close_out (open_out path)
  with Sys_error e ->
    Printf.eprintf "cannot write bench artifact %s: %s\n" path e;
    exit 1

let write ~path ~artifact fields =
  let doc =
    Obj
      (("artifact", Str artifact)
      :: ("schema_version", Int schema_version)
      :: ("git", Str (Lazy.force git_describe))
      :: ("cpu_model", Str (Lazy.force cpu_model))
      :: ("domains", Int (Domain.recommended_domain_count ()))
      :: fields)
  in
  (try
     let oc = open_out path in
     output_string oc (to_string doc);
     output_char oc '\n';
     close_out oc
   with Sys_error e ->
     Printf.eprintf "cannot write bench artifact %s: %s\n" path e;
     exit 1);
  Printf.printf "wrote %s\n" path
