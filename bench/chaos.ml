(* micro-chaos: the deterministic chaos harness for the hardened
   service runtime (BENCH_chaos.json). Four seeded scenarios, each
   with a recovery gate:

   1. kill9 mid-write — a real writer process is SIGKILLed while
      appending to its private dot-temp in a shared store; a stale
      lock is planted next to it. The next startup's janitor must
      sweep both and the store must keep serving.
   2. corrupt store — the published entry's payload is bit-flipped at
      a seeded position. The next read must quarantine it to [.bad]
      and recompile; the served plan must be byte-identical to the
      pre-corruption plan (zero corrupt serves), and a further
      restart must serve the healed entry as a clean disk hit.
   3. wedged cc — OMPSIM_JIT_CC points at a script that answers
      --version and then sleeps forever. The first compile must fail
      within 2x OMPSIM_JIT_TIMEOUT_MS, the breaker must open at the
      threshold, an open-state attempt must be rejected near-instantly
      without forking the compiler, and after the cooldown a half-open
      probe against the real compiler must close it again.
   4. flooding client — a pipelining flooder hammers a rate-limited
      server while a paced victim measures round-trip latency. The
      victim's loaded p99 must stay within 3x its unloaded p99 (with
      a small absolute floor for scheduler noise), nobody may lose a
      response, and the victim must never be throttled.

   Afterwards the breaker counters, cache stats, serve_stats and the
   obsv jit.breaker.* / cache.* / serve.throttled metrics must
   reconcile exactly against the client-side ground truth. *)

module Server = Service.Server
module Cache = Service.Cache
module A = Polymath.Affine
module Q = Zmath.Rat

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> default)
  | None -> default

let header s =
  Printf.printf "== %s ==\n%!" s

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i j = j = nl || (hay.[i + j] = needle.[j] && at i (j + 1)) in
  let rec find i = i + nl <= hl && (at i 0 || find (i + 1)) in
  find 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let fresh_dir tag =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ompsim-chaos-%s-%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ()) (Sys.readdir d);
  d

let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)

(* the canonical triangular nest: cheap to plan, distinct from the
   kernel registry so the flood scenario's cache is independent *)
let tri_nest =
  lazy
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ])

let with_env kvs f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) kvs in
  List.iter (fun (k, v) -> Unix.putenv k v) kvs;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, v) -> Unix.putenv k (Option.value v ~default:"")) saved)
    f

(* ---------------- scenarios 1+2: store crash + corruption ---------------- *)

type store_result = {
  janitor_restart : int;  (** files swept by the post-crash startup *)
  tmp_swept : bool;
  lock_swept : bool;
  quarantined : int;
  bad_exists : bool;
  digest_match_recompile : bool;  (** healed plan == pre-corruption plan *)
  digest_match_hit : bool;
  clean_disk_hit : bool;  (** third start serves the healed entry from disk *)
  janitor_total : int;  (** sum over all three startups, for the obsv ledger *)
}

let store_chaos ~seed =
  let dir = fresh_dir "store" in
  let nest = Lazy.force tri_nest in
  let fp = Service.Fingerprint.hash nest in
  (* epoch 1: a healthy writer publishes the plan *)
  let cache1 = Cache.create ~capacity:8 ~dir:(Some dir) () in
  let digest0 =
    match Cache.find_or_compile cache1 nest with
    | Ok (plan, _) -> Digest.to_hex (Digest.string (Service.Plan.encode plan))
    | Error e -> failwith ("micro-chaos: seed compile failed: " ^ e)
  in
  let s1 = Cache.stats cache1 in
  (* a second writer is kill -9'd mid-append to its private dot-temp:
     the canonical torn-write crash the janitor exists for *)
  let script =
    Printf.sprintf "cd %s || exit 1; while :; do printf xxxxxxxx >> .victim00.$$.tmp; done"
      (Filename.quote dir)
  in
  let pid = Unix.create_process "/bin/sh" [| "/bin/sh"; "-c"; script |] Unix.stdin Unix.stdout Unix.stderr in
  let tmp_name = Printf.sprintf ".victim00.%d.tmp" pid in
  let tmp_path = Filename.concat dir tmp_name in
  let rec wait_tmp tries =
    if not (Sys.file_exists tmp_path) then
      if tries = 0 then failwith "micro-chaos: crash victim never started writing"
      else begin
        Unix.sleepf 0.01;
        wait_tmp (tries - 1)
      end
  in
  wait_tmp 500;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (* a stale lock from the same dead writer *)
  let lock_path = Filename.concat dir "victim00.lock" in
  write_file lock_path "";
  (* seeded single-byte corruption of the published entry's payload
     (xor 0x01 — a case flip inside the hex header would be
     semantically invisible to the parser) *)
  let entry_path = Filename.concat dir (fp ^ ".plan") in
  let entry = read_file entry_path in
  let hdr_end = String.index entry '\n' + 1 in
  let state = ref (max 1 seed) in
  state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
  let flip_at = hdr_end + (!state mod (String.length entry - hdr_end)) in
  let corrupted = Bytes.of_string entry in
  Bytes.set corrupted flip_at (Char.chr (Char.code (Bytes.get corrupted flip_at) lxor 0x01));
  write_file entry_path (Bytes.to_string corrupted);
  (* epoch 2: restart over the crashed store. The janitor must sweep
     the orphaned temp and the stale lock; the first request must
     quarantine the corrupt entry and recompile — never serve it *)
  let cache2 = Cache.create ~capacity:8 ~dir:(Some dir) () in
  let s2_start = Cache.stats cache2 in
  let tmp_swept = not (Sys.file_exists tmp_path) in
  let lock_swept = not (Sys.file_exists lock_path) in
  let digest2 =
    match Cache.find_or_compile cache2 nest with
    | Ok (plan, _) -> Digest.to_hex (Digest.string (Service.Plan.encode plan))
    | Error e -> failwith ("micro-chaos: post-crash compile failed: " ^ e)
  in
  let s2 = Cache.stats cache2 in
  let bad_exists = Sys.file_exists (Filename.concat dir (fp ^ ".bad")) in
  (* epoch 3: the healed entry must be a clean disk hit (this start's
     janitor also clears the quarantine file) *)
  let cache3 = Cache.create ~capacity:8 ~dir:(Some dir) () in
  let digest3 =
    match Cache.find_or_compile cache3 nest with
    | Ok (plan, _) -> Digest.to_hex (Digest.string (Service.Plan.encode plan))
    | Error e -> failwith ("micro-chaos: healed read failed: " ^ e)
  in
  let s3 = Cache.stats cache3 in
  { janitor_restart = s2_start.Cache.janitor_removed;
    tmp_swept;
    lock_swept;
    quarantined = s2.Cache.quarantined;
    bad_exists;
    digest_match_recompile = digest2 = digest0;
    digest_match_hit = digest3 = digest0;
    clean_disk_hit = s3.Cache.disk_hits = 1 && s3.Cache.quarantined = 0;
    janitor_total =
      s1.Cache.janitor_removed + s2.Cache.janitor_removed + s3.Cache.janitor_removed
  }

(* ---------------- scenario 3: wedged toolchain ---------------- *)

type wedged_result = {
  timeout_ms : int;
  first_fail_ms : float;
  fail_bounded : bool;  (** first failure within 2x the deadline *)
  deadline_named : bool;  (** error surfaces OMPSIM_JIT_TIMEOUT_MS *)
  opened : bool;
  reject_ms : float;
  reject_instant : bool;
  gcc_available : bool;
  recovered : bool;  (** half-open probe against the real cc closed it *)
  opens : int;
  rejections : int;
  probes : int;
  final_state : string;
}

let wedged_chaos () =
  let dir = fresh_dir "jit" in
  let timeout_ms = max 100 (env_int "BENCH_CHAOS_TIMEOUT_MS" 500) in
  let cc = Filename.concat dir "wedged-cc" in
  write_file cc "#!/bin/sh\ncase \"$1\" in --version) echo wedged-cc 1.0; exit 0;; esac\nsleep 600\n";
  Unix.chmod cc 0o755;
  let breaker = Jit.Breaker.create ~threshold:2 ~cooldown_ms:(2 * timeout_ms) () in
  let inv = Trahrhe.Inversion.invert_exn (Lazy.force tri_nest) in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let r1, t1, r2, r3, t3 =
    with_env
      [ ("OMPSIM_JIT_CC", cc); ("OMPSIM_JIT_TIMEOUT_MS", string_of_int timeout_ms) ]
      (fun () ->
        let r1, t1 =
          timed (fun () -> Jit.Compile.specialize ~dir ~breaker ~fingerprint:"chaoswedge1" inv)
        in
        let r2, _ =
          timed (fun () -> Jit.Compile.specialize ~dir ~breaker ~fingerprint:"chaoswedge2" inv)
        in
        (* breaker is open now: this must be rejected without forking *)
        let r3, t3 =
          timed (fun () -> Jit.Compile.specialize ~dir ~breaker ~fingerprint:"chaoswedge3" inv)
        in
        (r1, t1, r2, r3, t3))
  in
  let opened = Jit.Breaker.state breaker = Jit.Breaker.Open in
  let rejected =
    match r3 with Error e -> Jit.Compile.is_breaker_rejection e | Ok _ -> false
  in
  (* recovery: point the breaker's half-open probe at the real
     compiler (and the default 30s deadline — a loaded box must not
     re-open the breaker on a slow legitimate compile) *)
  Unix.sleepf (float_of_int (2 * timeout_ms) /. 1000. +. 0.05);
  let gcc_available, r4 =
    with_env
      [ ("OMPSIM_JIT_CC", ""); ("OMPSIM_JIT_TIMEOUT_MS", "") ]
      (fun () ->
        let avail = Jit.Abi.available () in
        let r4 =
          if avail then Jit.Compile.specialize ~dir ~breaker ~fingerprint:"chaosrecover" inv
          else Error "gcc unavailable"
        in
        (avail, r4))
  in
  let recovered =
    gcc_available
    && (match r4 with Ok _ -> true | Error _ -> false)
    && Jit.Breaker.state breaker = Jit.Breaker.Closed
  in
  ignore r2;
  { timeout_ms;
    first_fail_ms = t1;
    fail_bounded = t1 <= 2.0 *. float_of_int timeout_ms;
    deadline_named =
      (match r1 with Error e -> contains ~needle:"OMPSIM_JIT_TIMEOUT_MS" e | Ok _ -> false);
    opened;
    reject_ms = t3;
    reject_instant = rejected && t3 <= 100.0;
    gcc_available;
    recovered;
    opens = Jit.Breaker.opens breaker;
    rejections = Jit.Breaker.rejections breaker;
    probes = Jit.Breaker.probes breaker;
    final_state = Jit.Breaker.state_name (Jit.Breaker.state breaker)
  }

(* ---------------- scenario 4: flooding client ---------------- *)

type flood_result = {
  victim_reqs : int;
  flood_reqs : int;
  rate_limit : float;
  p99_unloaded_us : float;
  p99_loaded_us : float;
  p99_bound_us : float;
  p99_ok : bool;
  victim_overloads : int;  (** must be 0: pacing keeps it under the limit *)
  flood_overloads : int;
  lost : int;  (** requests that never got a response line *)
  health_ok : bool;
  stats : Server.serve_stats;
}

let flood_chaos () =
  let victim_reqs = max 20 (env_int "BENCH_CHAOS_VICTIM_REQS" 200) in
  let window = max 4 (env_int "BENCH_CHAOS_FLOOD_WINDOW" 32) in
  let rate = float_of_int (max 100 (env_int "BENCH_CHAOS_RATE" 2000)) in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ompsim-chaos-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let cache = Cache.create ~capacity:32 ~dir:None () in
  let config =
    { Server.default_serve_config with
      max_clients = 8;
      max_inflight = 2 * window;
      max_inflight_per_client = window;
      rate_limit = Some rate;
      rate_burst = window;
      (* a small quantum keeps the victim's turnaround bounded even
         while a flooder has a full pipeline queued *)
      service_quantum = 8 }
  in
  let server = Domain.spawn (fun () -> Server.serve ~cache ~config ~socket ()) in
  let rec wait_ready tries =
    if not (Sys.file_exists socket) then
      if tries = 0 then failwith "micro-chaos: server socket never appeared"
      else begin
        Unix.sleepf 0.01;
        wait_ready (tries - 1)
      end
  in
  wait_ready 500;
  let connect () =
    let rec go tries =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.01;
        go (tries - 1)
    in
    go 500
  in
  let send_all fd s =
    let n = String.length s in
    let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
    go 0
  in
  let make_reader fd =
    let buf = Buffer.create 4096 in
    let pos = ref 0 in
    let chunk = Bytes.create 4096 in
    fun () ->
      let rec next () =
        let s = Buffer.contents buf in
        match String.index_from_opt s !pos '\n' with
        | Some i ->
          let line = String.sub s !pos (i - !pos) in
          pos := i + 1;
          if !pos = String.length s then begin
            Buffer.clear buf;
            pos := 0
          end;
          line
        | None -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> failwith "micro-chaos: unexpected EOF"
          | r ->
            Buffer.add_subbytes buf chunk 0 r;
            next ())
      in
      next ()
  in
  let req = "compile kernel=utma\n" in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  (* the victim: strictly paced at rate/4 so the limiter never fires
     for it; each request is blocking request/response *)
  let victim_overloads = ref 0 in
  let pace = 4.0 /. rate in
  let victim_phase fd read_line =
    let lats =
      Array.init victim_reqs (fun _ ->
          Unix.sleepf pace;
          let t0 = Unix.gettimeofday () in
          send_all fd req;
          let line = read_line () in
          if contains ~needle:"rejected:overload" line then incr victim_overloads;
          (Unix.gettimeofday () -. t0) *. 1e6)
    in
    Array.sort compare lats;
    lats
  in
  let victim_fd = connect () in
  let victim_read = make_reader victim_fd in
  (* warm the plan so both phases measure cache hits *)
  send_all victim_fd req;
  ignore (victim_read ());
  let unloaded = victim_phase victim_fd victim_read in
  (* the flooder: full pipeline windows as fast as the socket accepts
     them, until told to stop. Every response is read and classified,
     so "lost" is exact *)
  let stop = Atomic.make false in
  let started = Atomic.make false in
  let flooder =
    Domain.spawn (fun () ->
        let fd = connect () in
        let read_line = make_reader fd in
        let batch = Buffer.create (window * String.length req) in
        for _ = 1 to window do
          Buffer.add_string batch req
        done;
        let sent = ref 0 and got = ref 0 and overloads = ref 0 in
        while not (Atomic.get stop) do
          send_all fd (Buffer.contents batch);
          sent := !sent + window;
          for _ = 1 to window do
            let line = read_line () in
            incr got;
            if contains ~needle:"rejected:overload" line then incr overloads
          done;
          Atomic.set started true;
          (* a remote flooder has a round trip between windows; pacing
             here keeps the abuse at ~window/2ms (far over any sane
             rate limit) without turning the bench into a pure CPU
             contention test on small boxes *)
          Unix.sleepf 0.002
        done;
        Unix.close fd;
        (!sent, !got, !overloads))
  in
  let rec wait_started tries =
    if not (Atomic.get started) then
      if tries = 0 then failwith "micro-chaos: flooder never completed a batch"
      else begin
        Unix.sleepf 0.01;
        wait_started (tries - 1)
      end
  in
  wait_started 500;
  let loaded = victim_phase victim_fd victim_read in
  Atomic.set stop true;
  let flood_sent, flood_got, flood_overloads = Domain.join flooder in
  Unix.close victim_fd;
  (* health must answer even right after the flood, with the full
     robustness ledger in one line *)
  let health_fd = connect () in
  let health_read = make_reader health_fd in
  send_all health_fd "health\n";
  let health_line = health_read () in
  let health_ok =
    contains ~needle:"\"op\":\"health\"" health_line
    && contains ~needle:"\"breaker\":{\"state\":\"" health_line
    && contains ~needle:"\"quarantined\"" health_line
    && contains ~needle:"\"inflight\"" health_line
  in
  send_all health_fd "shutdown\n";
  ignore (health_read ());
  Unix.close health_fd;
  let stats =
    match Domain.join server with
    | Ok s -> s
    | Error e -> failwith ("micro-chaos: serve failed: " ^ e)
  in
  let p99_unloaded = percentile unloaded 0.99 in
  let p99_loaded = percentile loaded 0.99 in
  (* 3x the unloaded p99, with an absolute floor: a sub-millisecond
     baseline makes a pure ratio a coin flip on scheduler noise, and
     on a single-core box the victim, flooder and server timeshare
     one CPU, so a couple of timeslices of tail are the OS, not the
     loop. Starvation — the failure this gate exists for — is orders
     of magnitude above either bound. *)
  let floor_us = float_of_int (env_int "BENCH_CHAOS_P99_FLOOR_US" 10000) in
  let p99_bound = Float.max (3.0 *. p99_unloaded) floor_us in
  { victim_reqs;
    flood_reqs = flood_sent;
    rate_limit = rate;
    p99_unloaded_us = p99_unloaded;
    p99_loaded_us = p99_loaded;
    p99_bound_us = p99_bound;
    p99_ok = p99_loaded <= p99_bound;
    victim_overloads = !victim_overloads;
    flood_overloads;
    lost = flood_sent - flood_got;
    health_ok;
    stats
  }

(* ---------------- driver ---------------- *)

let run () =
  let seed = env_int "BENCH_CHAOS_SEED" 42 in
  header (Printf.sprintf "micro-chaos: crash/corruption/wedge/flood recovery gates (seed %d)" seed);
  Emit.ensure_writable "BENCH_chaos.json";
  Obsv.Control.with_enabled true @@ fun () ->
  let metric name =
    match Obsv.Metrics.find name with Some m -> Obsv.Metrics.total m | None -> 0
  in
  let quarantined0 = metric "cache.quarantined" in
  let janitor0 = metric "cache.janitor" in
  let throttled0 = metric "serve.throttled" in
  let opens0 = metric "jit.breaker.open" in
  let rejects0 = metric "jit.breaker.reject" in
  let probes0 = metric "jit.breaker.probe" in
  let timeouts0 = metric "jit.timeout" in

  let st = store_chaos ~seed in
  let kill9_ok =
    st.tmp_swept && st.lock_swept && st.janitor_restart >= 2 && st.digest_match_recompile
  in
  Printf.printf
    "kill9:   janitor swept %d (tmp %b, stale lock %b), healed plan identical %b -> %s\n%!"
    st.janitor_restart st.tmp_swept st.lock_swept st.digest_match_recompile
    (if kill9_ok then "ok" else "FAIL");
  let corrupt_ok =
    st.quarantined = 1 && st.bad_exists && st.digest_match_recompile && st.digest_match_hit
    && st.clean_disk_hit
  in
  Printf.printf
    "corrupt: quarantined %d (.bad %b), recompiled identical %b, healed disk hit %b -> %s\n%!"
    st.quarantined st.bad_exists st.digest_match_recompile st.clean_disk_hit
    (if corrupt_ok then "ok" else "FAIL");

  let w = wedged_chaos () in
  let wedged_ok =
    w.fail_bounded && w.deadline_named && w.opened && w.reject_instant
    && (not w.gcc_available || w.recovered)
  in
  Printf.printf
    "wedged:  first fail %.0f ms (bound %d ms) %b, breaker opened %b, open reject %.1f ms, \
     recovered %b (gcc %b), final %s -> %s\n%!"
    w.first_fail_ms (2 * w.timeout_ms) w.fail_bounded w.opened w.reject_ms w.recovered
    w.gcc_available w.final_state
    (if wedged_ok then "ok" else "FAIL");

  let f = flood_chaos () in
  let flood_ok =
    f.p99_ok && f.lost = 0 && f.victim_overloads = 0 && f.flood_overloads > 0 && f.health_ok
    && f.stats.Server.dropped = 0
  in
  Printf.printf
    "flood:   victim p99 %.0f us unloaded -> %.0f us loaded (bound %.0f us) %b, throttled %d, \
     lost %d, health %b -> %s\n%!"
    f.p99_unloaded_us f.p99_loaded_us f.p99_bound_us f.p99_ok f.flood_overloads f.lost f.health_ok
    (if flood_ok then "ok" else "FAIL");

  (* the ledger: client-side ground truth = serve_stats = obsv *)
  let victim_total = (2 * f.victim_reqs) + 1 (* warm-up *) in
  let reconciled =
    metric "cache.quarantined" - quarantined0 = st.quarantined
    && metric "cache.janitor" - janitor0 = st.janitor_total
    && metric "serve.throttled" - throttled0 = f.stats.Server.throttled
    && f.stats.Server.throttled = f.flood_overloads + f.victim_overloads
    && metric "jit.breaker.open" - opens0 = w.opens
    && metric "jit.breaker.reject" - rejects0 = w.rejections
    && metric "jit.breaker.probe" - probes0 = w.probes
    && metric "jit.timeout" - timeouts0 = 2
    && f.stats.Server.responses = victim_total + f.flood_reqs + 2 (* health + shutdown *)
    && f.stats.Server.requests = victim_total + (f.flood_reqs - f.flood_overloads) + 1
    && f.stats.Server.error_responses = f.flood_overloads
    && f.stats.Server.health_probes = 1
    && f.stats.Server.dropped = 0
    && f.stats.Server.inflight_final = 0
  in
  Printf.printf "counters reconcile (ground truth = stats = obsv): %s\n%!"
    (if reconciled then "ok" else "MISMATCH");
  let chaos_ok = kill9_ok && corrupt_ok && wedged_ok && flood_ok && reconciled in
  Printf.printf "chaos: %s\n%!" (if chaos_ok then "ALL GATES PASS" else "GATE FAILURES");

  Emit.write ~path:"BENCH_chaos.json" ~artifact:"micro-chaos"
    [ ("seed", Emit.Int seed);
      ( "kill9",
        Emit.Obj
          [ ("janitor_removed_on_restart", Emit.Int st.janitor_restart);
            ("orphan_tmp_swept", Emit.Bool st.tmp_swept);
            ("stale_lock_swept", Emit.Bool st.lock_swept);
            ("healed_plan_identical", Emit.Bool st.digest_match_recompile)
          ] );
      ( "corrupt_store",
        Emit.Obj
          [ ("quarantined", Emit.Int st.quarantined);
            ("bad_file_present", Emit.Bool st.bad_exists);
            ("recompiled_identical", Emit.Bool st.digest_match_recompile);
            ("healed_disk_hit", Emit.Bool st.clean_disk_hit);
            ("janitor_total", Emit.Int st.janitor_total)
          ] );
      ( "wedged_cc",
        Emit.Obj
          [ ("timeout_ms", Emit.Int w.timeout_ms);
            ("first_fail_ms", Emit.F (w.first_fail_ms, 1));
            ("fail_bound_ms", Emit.Int (2 * w.timeout_ms));
            ("deadline_named_in_error", Emit.Bool w.deadline_named);
            ("breaker_opened", Emit.Bool w.opened);
            ("open_reject_ms", Emit.F (w.reject_ms, 2));
            ("gcc_available", Emit.Bool w.gcc_available);
            ("recovered", Emit.Bool w.recovered);
            ("final_state", Emit.Str w.final_state);
            ("opens", Emit.Int w.opens);
            ("rejections", Emit.Int w.rejections);
            ("probes", Emit.Int w.probes)
          ] );
      ( "flood",
        Emit.Obj
          [ ("victim_requests_per_phase", Emit.Int f.victim_reqs);
            ("flood_requests", Emit.Int f.flood_reqs);
            ("rate_limit_rps", Emit.F (f.rate_limit, 0));
            ("p99_unloaded_us", Emit.F (f.p99_unloaded_us, 0));
            ("p99_loaded_us", Emit.F (f.p99_loaded_us, 0));
            ("p99_bound_us", Emit.F (f.p99_bound_us, 0));
            ("victim_overloads", Emit.Int f.victim_overloads);
            ("flood_overloads", Emit.Int f.flood_overloads);
            ("throttled", Emit.Int f.stats.Server.throttled);
            ("lost_responses", Emit.Int f.lost);
            ("health_responsive", Emit.Bool f.health_ok);
            ("dropped", Emit.Int f.stats.Server.dropped)
          ] );
      ( "gates",
        Emit.Obj
          [ ("kill9_selfheal_ok", Emit.Bool kill9_ok);
            ("corrupt_quarantine_ok", Emit.Bool corrupt_ok);
            ("wedged_cc_ok", Emit.Bool wedged_ok);
            ("flood_ok", Emit.Bool flood_ok);
            ("counters_reconciled", Emit.Bool reconciled)
          ] );
      ("chaos_ok", Emit.Bool chaos_ok)
    ]
